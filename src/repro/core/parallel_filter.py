"""Parallel polar-filter drivers: the four configurations the paper times.

Tables 8-11 compare three filtering implementations (plus the implicit
serial case):

* ``convolution-ring``  — the original eq.-2 convolution with full lines
  assembled by a ring allgather around each processor row;
* ``convolution-tree``  — the eq.-2 convolution with lines gathered to a
  row leader through a binomial ("binary") tree and segments scattered
  back;
* ``fft``               — transpose-based FFT filtering *without* load
  balancing (:func:`~repro.core.balance_plan.natural_assignment`): whole
  lines are assembled by an all-to-all within each processor row, but
  only the high-latitude rows have any lines;
* ``fft-lb``            — the paper's contribution: the same transpose
  FFT behind the generic row-redistribution balancer
  (:func:`~repro.core.balance_plan.balanced_assignment`), so every rank
  FFTs ~``sum_j R_j / P`` lines.

Every driver is a generator to be run inside a rank program.  They move
*real* array data (results are asserted identical to the serial filters in
the test suite) and charge the machine model for every message and flop,
so the virtual timings reproduce the paper's comparisons structurally.

Wire format: a group of row-unit segments is concatenated along the layer
axis into one ``(nlon_segment, sum_of_layers)`` array — variables with
different layer counts (``ps`` has one, the 3-D fields have K) pack into
a single message, and both endpoints derive the split offsets from the
globally known plan.  All filtered fields must be 3-D
``(nlat, nlon, nlayers)`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.balance_plan import (
    FilterAssignment,
    balanced_assignment,
    natural_assignment,
)
from repro.core.convolution import (
    circulant_matrix,
    convolution_filter_rows,
    convolution_flop_count,
)
from repro.core.fft import fft_filter_line, fft_filter_rows, fft_filter_flop_count
from repro.core.masks import FilterPlan
from repro.grid.decomposition import Decomposition2D
from repro.parallel import collectives as coll
from repro.parallel import engine as _engine
from repro.parallel.comm import VirtualComm
from repro.parallel.events import Exchange

#: Recognised backend names, in the order the paper's tables list them.
FILTER_BACKENDS = ("convolution-ring", "convolution-tree", "fft", "fft-lb")

#: FILTER_BACKENDS plus the distributed 1-D FFT — the alternative the
#: paper rejected in Section 3.2.  It requires power-of-two line lengths
#: and ranks per row, so it is not part of the default set.
EXTENDED_BACKENDS = FILTER_BACKENDS + ("fft-distributed",)

_TAG_STAGE_A = 0x00BB0001
_TAG_STAGE_A_BACK = 0x00BB0002


def _staged_exchange(sends, recvs) -> Exchange:
    """One Exchange for an *all-sends-then-all-recvs* schedule.

    Stage A of the transpose filter posts every outgoing segment before
    draining the incoming ones; the batched form pads the rounds so the
    wire order is identical to the loop path: the received payloads sit
    in ``result()[len(sends):]``.
    """
    return Exchange(
        sends=tuple(sends) + (None,) * len(recvs),
        recvs=(None,) * len(sends) + tuple(recvs),
    )


@dataclass
class FilterBackend:
    """A prepared filtering configuration for one decomposition.

    Built once at setup (mirroring the paper's one-time set-up step) and
    reused every time step.
    """

    name: str
    plan: FilterPlan
    decomp: Decomposition2D
    assignment: Optional[FilterAssignment]  # None for convolution backends

    def apply(self, ctx: VirtualComm, local_fields: Dict[str, np.ndarray]):
        """Generator: filter the local fields in place on this rank."""
        if self.name == "convolution-ring":
            yield from filter_convolution_ring(
                ctx, self.decomp, self.plan, local_fields
            )
        elif self.name == "convolution-tree":
            yield from filter_convolution_tree(
                ctx, self.decomp, self.plan, local_fields
            )
        elif self.name in ("fft", "fft-lb"):
            yield from filter_fft_transpose(
                ctx, self.decomp, self.plan, self.assignment, local_fields
            )
        elif self.name == "fft-distributed":
            yield from filter_fft_distributed(
                ctx, self.decomp, self.plan, local_fields
            )
        else:  # pragma: no cover - prepare_filter_backend validates
            raise ValueError(f"unknown backend {self.name!r}")


def prepare_filter_backend(
    name: str, plan: FilterPlan, decomp: Decomposition2D
) -> FilterBackend:
    """Build the per-run setup state for a named filter backend."""
    if name not in EXTENDED_BACKENDS:
        raise ValueError(
            f"unknown filter backend {name!r}; choose from {EXTENDED_BACKENDS}"
        )
    if name == "fft-distributed":
        from repro.core.distributed_fft import check_distributed_fft_shape

        check_distributed_fft_shape(decomp.nlon, decomp.mesh.nlon_procs)
    assignment: Optional[FilterAssignment] = None
    if name == "fft":
        assignment = natural_assignment(plan, decomp)
    elif name == "fft-lb":
        assignment = balanced_assignment(plan, decomp)
    return FilterBackend(name=name, plan=plan, decomp=decomp, assignment=assignment)


def apply_serial_filter(
    plan: FilterPlan, fields: Dict[str, np.ndarray], method: str = "fft"
) -> None:
    """Serial reference: filter global fields in place.

    ``method`` is ``"fft"`` or ``"convolution"``; both must (and, by the
    convolution theorem, do) give identical results — asserted in tests.
    """
    for var in plan.strong_vars:
        if var in fields:
            if method == "fft":
                fields[var][...] = fft_filter_rows(fields[var], plan.strong)
            else:
                fields[var][...] = convolution_filter_rows(fields[var], plan.strong)
    for var in plan.weak_vars:
        if var in fields:
            if method == "fft":
                fields[var][...] = fft_filter_rows(fields[var], plan.weak)
            else:
                fields[var][...] = convolution_filter_rows(fields[var], plan.weak)


# ----------------------------------------------------------------------
# packing helpers: unit segments <-> wire arrays
# ----------------------------------------------------------------------

def _layers_of(local_fields: Dict[str, np.ndarray]) -> Dict[str, int]:
    """Layer count of each filtered variable (identical on every rank)."""
    out = {}
    for name, arr in local_fields.items():
        if arr.ndim != 3:
            raise ValueError(
                f"filtered field {name!r} must be 3-D (nlat, nlon, K); "
                f"got shape {arr.shape}"
            )
        out[name] = arr.shape[2]
    return out


def _segment(
    local_fields: Dict[str, np.ndarray], plan: FilterPlan, unit: int, lat0: int
) -> np.ndarray:
    """This rank's longitude segment of a row unit — (nlon_loc, K_var)."""
    u = plan.units[unit]
    return local_fields[u.var][u.lat - lat0]


def _store_segment(
    local_fields: Dict[str, np.ndarray],
    plan: FilterPlan,
    unit: int,
    lat0: int,
    segment: np.ndarray,
) -> None:
    """Write a filtered segment back into the local field row."""
    u = plan.units[unit]
    local_fields[u.var][u.lat - lat0] = segment


def _pack_units(
    local_fields: Dict[str, np.ndarray],
    plan: FilterPlan,
    units: Sequence[int],
    lat0: int,
    nlon_loc: int,
) -> np.ndarray:
    """Concatenate unit segments along the layer axis: (nlon_loc, sum K)."""
    if not units:
        return np.empty((nlon_loc, 0))
    return np.ascontiguousarray(
        np.concatenate(
            [_segment(local_fields, plan, u, lat0) for u in units], axis=1
        )
    )


def _unit_offsets(
    plan: FilterPlan, units: Sequence[int], layers: Dict[str, int]
) -> List[int]:
    """Cumulative layer offsets of each unit inside a packed array."""
    offs = [0]
    for u in units:
        offs.append(offs[-1] + layers[plan.units[u].var])
    return offs


def _split_units(
    packed: np.ndarray,
    plan: FilterPlan,
    units: Sequence[int],
    layers: Dict[str, int],
) -> List[np.ndarray]:
    """Invert :func:`_pack_units`: views per unit, (nlon, K_var) each."""
    offs = _unit_offsets(plan, units, layers)
    return [packed[:, offs[i] : offs[i + 1]] for i in range(len(units))]


def _unit_transfer(plan: FilterPlan, unit: int) -> np.ndarray:
    """The rfft transfer factors for a unit's (filter, latitude)."""
    u = plan.units[unit]
    return plan.filter_for(u).transfer(u.lat)


def _total_layers(
    plan: FilterPlan, units: Sequence[int], layers: Dict[str, int]
) -> int:
    """Total packed layer count of a unit list."""
    return sum(layers[plan.units[u].var] for u in units)


def _convolution_segment_flops(
    plan: FilterPlan,
    units: Sequence[int],
    layers: Dict[str, int],
    out_points: int,
) -> float:
    """Eq.-2 wavenumber-sum cost of convolving ``out_points`` per line.

    ``4 * out_points * M_s`` flops per layer of each unit, where ``M_s``
    is the number of damped wavenumbers at the unit's latitude (sine and
    cosine contributions, one multiply + one add each).
    """
    total = 0.0
    for u in units:
        ru = plan.units[u]
        m = plan.filter_for(ru).damped_bin_count(ru.lat)
        total += 4.0 * out_points * m * layers[ru.var]
    return total


# ----------------------------------------------------------------------
# convolution backends (the original code's algorithms)
# ----------------------------------------------------------------------

def filter_convolution_ring(
    ctx: VirtualComm,
    decomp: Decomposition2D,
    plan: FilterPlan,
    local_fields: Dict[str, np.ndarray],
):
    """Eq.-2 convolution with ring allgather of line segments.

    Within each processor row, all ranks allgather their segments of every
    filtered line owned by the row (``N_procs - 1`` ring rounds, the
    paper's "communications around processor rings in the longitudinal
    direction" with no partial summation), then each rank convolves the
    full lines to produce *its own* longitude segment of the output.
    """
    mesh = decomp.mesh
    sub = decomp.subdomain(ctx.rank)
    i_row, _ = mesh.coords_of(ctx.rank)
    my_units = [
        u for u, ru in enumerate(plan.units) if sub.lat0 <= ru.lat < sub.lat1
    ]
    if not my_units:
        # Idle during filtering: the load imbalance the paper measures.
        return
    layers = _layers_of(local_fields)
    row_group = ctx.group(mesh.row_ranks(i_row))

    packed = _pack_units(local_fields, plan, my_units, sub.lat0, sub.nlon)
    with ctx.span("filter.gather", units=len(my_units)):
        gathered = yield from row_group.allgather(packed)
    lines = np.concatenate(gathered, axis=0)  # (nlon, sum K)

    nlon = decomp.nlon
    # Charge the AGCM's wavenumber-sum form of eq. (2): each output point
    # of a line sums over the M_s damped wavenumbers of that latitude
    # (sine and cosine components), and this rank only computes its own
    # longitude segment of each line.
    # The ring variant computes only its own (short) longitude segment of
    # each output line, so its inner loops suffer the vector-startup
    # penalty on small blocks — one of the reasons the original filter
    # scales poorly.
    with ctx.span("filter.convolve", units=len(my_units)):
        yield from ctx.compute(
            flops=_convolution_segment_flops(plan, my_units, layers, sub.nlon),
            mem_bytes=2.0 * lines.nbytes,
            inner_length=sub.nlon,
        )
    lon_sel = np.arange(sub.lon0, sub.lon1)
    per_unit = _split_units(lines, plan, my_units, layers)
    for u, line in zip(my_units, per_unit):
        kernel = plan.filter_for(plan.units[u]).kernel(plan.units[u].lat)
        rows = circulant_matrix(kernel)[lon_sel]  # (nlon_loc, nlon)
        _store_segment(local_fields, plan, u, sub.lat0, rows @ line)


def filter_convolution_tree(
    ctx: VirtualComm,
    decomp: Decomposition2D,
    plan: FilterPlan,
    local_fields: Dict[str, np.ndarray],
):
    """Eq.-2 convolution with binomial-tree gather to a row leader.

    Segments funnel up a binary tree to column 0 of each processor row
    (``O(2P)`` messages, ``O(NP + N log P)`` volume), the leader convolves
    whole lines, and filtered segments are scattered straight back.
    """
    mesh = decomp.mesh
    sub = decomp.subdomain(ctx.rank)
    i_row, _ = mesh.coords_of(ctx.rank)
    my_units = [
        u for u, ru in enumerate(plan.units) if sub.lat0 <= ru.lat < sub.lat1
    ]
    if not my_units:
        return
    layers = _layers_of(local_fields)
    row_group = ctx.group(mesh.row_ranks(i_row))

    packed = _pack_units(local_fields, plan, my_units, sub.lat0, sub.nlon)
    with ctx.span("filter.gather", units=len(my_units)):
        gathered = yield from coll.gather_binomial(row_group, packed, root=0)

    if row_group.rank == 0:
        lines = np.concatenate(gathered, axis=0)  # (nlon, sum K)
        nlon = decomp.nlon
        with ctx.span("filter.convolve", units=len(my_units)):
            yield from ctx.compute(
                flops=_convolution_segment_flops(plan, my_units, layers, nlon),
                mem_bytes=2.0 * lines.nbytes,
                inner_length=nlon,
            )
        filtered = np.empty_like(lines)
        per_unit_in = _split_units(lines, plan, my_units, layers)
        per_unit_out = _split_units(filtered, plan, my_units, layers)
        for u, line, out in zip(my_units, per_unit_in, per_unit_out):
            kernel = plan.filter_for(plan.units[u]).kernel(plan.units[u].lat)
            out[...] = circulant_matrix(kernel) @ line
        pieces = []
        for col in range(mesh.nlon_procs):
            lo, hi = decomp.lon_bounds_of_proc_col(col)
            pieces.append(np.ascontiguousarray(filtered[lo:hi]))
        with ctx.span("filter.scatter"):
            mine = yield from row_group.scatter(pieces, root=0)
    else:
        with ctx.span("filter.scatter"):
            mine = yield from row_group.scatter(None, root=0)

    for u, seg in zip(my_units, _split_units(mine, plan, my_units, layers)):
        _store_segment(local_fields, plan, u, sub.lat0, seg)


# ----------------------------------------------------------------------
# transpose-based FFT backends (the paper's optimisation)
# ----------------------------------------------------------------------

def filter_fft_transpose(
    ctx: VirtualComm,
    decomp: Decomposition2D,
    plan: FilterPlan,
    assignment: FilterAssignment,
    local_fields: Dict[str, np.ndarray],
):
    """Transpose-based FFT filtering, optionally load balanced.

    Stage A ships row-unit segments from owning to target processor rows
    (identity when ``assignment`` is natural); stage B transposes within
    each processor row so complete lines land on their owning column;
    local FFTs filter the lines; the inverse movements restore the
    original layout (paper Figures 2-3 and Section 3.2).
    """
    mesh = decomp.mesh
    sub = decomp.subdomain(ctx.rank)
    i_row, j_col = mesh.coords_of(ctx.rank)
    layers = _layers_of(local_fields)

    # ---------- stage A: latitudinal redistribution --------------------
    seg_store: Dict[int, np.ndarray] = {}
    for u in assignment.units_assigned_to_row(i_row):
        if assignment.owner_row[u] == i_row:
            seg_store[u] = _segment(local_fields, plan, u, sub.lat0)

    moves = assignment.stage_a_moves()
    with ctx.span("filter.redistribute"):
        if _engine.batched():
            sends = [
                (mesh.rank_of(dst, j_col),
                 _pack_units(local_fields, plan, units, sub.lat0, sub.nlon),
                 _TAG_STAGE_A, None, True)
                for src, dst, units in moves if src == i_row
            ]
            incoming = [(src, units) for src, dst, units in moves
                        if dst == i_row]
            if sends or incoming:
                received = yield _staged_exchange(
                    sends,
                    [(mesh.rank_of(src, j_col), _TAG_STAGE_A)
                     for src, _ in incoming],
                )
                for (_, units), payload in zip(incoming,
                                               received[len(sends):]):
                    for u, seg in zip(
                            units, _split_units(payload, plan, units, layers)):
                        seg_store[u] = seg
        else:
            for src, dst, units in moves:
                if src == i_row:
                    payload = _pack_units(local_fields, plan, units, sub.lat0,
                                          sub.nlon)
                    yield from ctx.send(
                        mesh.rank_of(dst, j_col), payload, tag=_TAG_STAGE_A
                    )
            for src, dst, units in moves:
                if dst == i_row:
                    payload = yield from ctx.recv(
                        mesh.rank_of(src, j_col), tag=_TAG_STAGE_A
                    )
                    for u, seg in zip(
                            units, _split_units(payload, plan, units, layers)):
                        seg_store[u] = seg

    # ---------- stage B: transpose within the processor row ------------
    assigned = assignment.units_assigned_to_row(i_row)
    row_group = ctx.group(mesh.row_ranks(i_row))
    n_cols = mesh.nlon_procs
    by_col: List[List[int]] = [[] for _ in range(n_cols)]
    for u in assigned:
        by_col[assignment.line_col[u]].append(u)

    if assigned:
        chunks = []
        for c in range(n_cols):
            if by_col[c]:
                chunks.append(
                    np.ascontiguousarray(
                        np.concatenate([seg_store[u] for u in by_col[c]], axis=1)
                    )
                )
            else:
                chunks.append(np.empty((sub.nlon, 0)))
        with ctx.span("filter.transpose"):
            received = yield from row_group.alltoall(chunks)
        my_units = by_col[j_col]
        # Assemble complete lines: concatenate column segments along lon.
        lines = np.concatenate([received[c] for c in range(n_cols)], axis=0)
        if my_units:
            # Whole-line FFTs: full vector length — the reason the paper
            # chose the transpose over a distributed 1-D FFT.
            with ctx.span("filter.fft", lines=len(my_units)):
                yield from ctx.compute(
                    flops=fft_filter_flop_count(
                        decomp.nlon, 1, lines.shape[1]
                    ),
                    mem_bytes=2.0 * lines.nbytes,
                    inner_length=decomp.nlon,
                )
            filtered = np.empty_like(lines)
            per_in = _split_units(lines, plan, my_units, layers)
            per_out = _split_units(filtered, plan, my_units, layers)
            for u, line, out in zip(my_units, per_in, per_out):
                out[...] = fft_filter_line(line, _unit_transfer(plan, u))
        else:
            filtered = lines  # (nlon, 0): nothing to do

        # ---------- inverse stage B -------------------------------------
        back_chunks = []
        for col in range(n_cols):
            lo, hi = decomp.lon_bounds_of_proc_col(col)
            back_chunks.append(np.ascontiguousarray(filtered[lo:hi]))
        with ctx.span("filter.transpose"):
            back = yield from row_group.alltoall(back_chunks)
        for c in range(n_cols):
            segs = _split_units(back[c], plan, by_col[c], layers)
            for u, seg in zip(by_col[c], segs):
                seg_store[u] = seg

    # ---------- inverse stage A -----------------------------------------
    with ctx.span("filter.redistribute"):
        if _engine.batched():
            sends = [
                (mesh.rank_of(src, j_col),
                 np.ascontiguousarray(
                     np.concatenate([seg_store[u] for u in units], axis=1)),
                 _TAG_STAGE_A_BACK, None, True)
                for src, dst, units in moves if dst == i_row
            ]
            incoming = [(dst, units) for src, dst, units in moves
                        if src == i_row]
            if sends or incoming:
                received = yield _staged_exchange(
                    sends,
                    [(mesh.rank_of(dst, j_col), _TAG_STAGE_A_BACK)
                     for dst, _ in incoming],
                )
                for (_, units), payload in zip(incoming,
                                               received[len(sends):]):
                    for u, seg in zip(
                            units, _split_units(payload, plan, units, layers)):
                        _store_segment(local_fields, plan, u, sub.lat0, seg)
        else:
            for src, dst, units in moves:
                if dst == i_row:
                    payload = np.ascontiguousarray(
                        np.concatenate([seg_store[u] for u in units], axis=1)
                    )
                    yield from ctx.send(
                        mesh.rank_of(src, j_col), payload,
                        tag=_TAG_STAGE_A_BACK
                    )
            for src, dst, units in moves:
                if src == i_row:
                    payload = yield from ctx.recv(
                        mesh.rank_of(dst, j_col), tag=_TAG_STAGE_A_BACK
                    )
                    for u, seg in zip(
                            units, _split_units(payload, plan, units, layers)):
                        _store_segment(local_fields, plan, u, sub.lat0, seg)

    # Write back the segments this rank both owns and was assigned.
    for u in assignment.units_assigned_to_row(i_row):
        if assignment.owner_row[u] == i_row:
            _store_segment(local_fields, plan, u, sub.lat0, seg_store[u])


# ----------------------------------------------------------------------
# the distributed 1-D FFT backend (the paper's rejected alternative)
# ----------------------------------------------------------------------

def filter_fft_distributed(
    ctx: VirtualComm,
    decomp: Decomposition2D,
    plan: FilterPlan,
    local_fields: Dict[str, np.ndarray],
):
    """Filter via binary-exchange distributed FFTs along processor rows.

    No transpose: each rank keeps its longitude segment and the FFT
    butterflies themselves communicate (``2 log2 P`` block exchanges per
    filtering pass).  Requires power-of-two line lengths and ranks per
    row — one of the practical reasons the paper preferred the
    transpose + local (mixed-radix library) FFT.  Load balance matches
    the plain ``fft`` backend: rows without filtered latitudes idle.
    """
    from repro.core.distributed_fft import (
        bitrev_transfer,
        check_distributed_fft_shape,
        distributed_fft_filter_line,
    )

    mesh = decomp.mesh
    sub = decomp.subdomain(ctx.rank)
    i_row, j_col = mesh.coords_of(ctx.rank)
    my_units = [
        u for u, ru in enumerate(plan.units) if sub.lat0 <= ru.lat < sub.lat1
    ]
    if not my_units:
        return
    layers = _layers_of(local_fields)
    local_n = check_distributed_fft_shape(decomp.nlon, mesh.nlon_procs)
    row_group = ctx.group(mesh.row_ranks(i_row))

    packed = _pack_units(local_fields, plan, my_units, sub.lat0, sub.nlon)
    # Per-layer bit-reversed transfer factors for this rank's block.
    lo, hi = j_col * local_n, (j_col + 1) * local_n
    t = np.empty((local_n, packed.shape[1]))
    offs = _unit_offsets(plan, my_units, layers)
    for i, u in enumerate(my_units):
        ru = plan.units[u]
        full = bitrev_transfer(
            np.asarray(plan.filter_for(ru).transfer(ru.lat)), decomp.nlon
        )
        t[:, offs[i] : offs[i + 1]] = full[lo:hi, None]

    with ctx.span("filter.fft", lines=len(my_units)):
        filtered = yield from distributed_fft_filter_line(row_group, packed, t)
    for u, seg in zip(my_units, _split_units(filtered, plan, my_units, layers)):
        _store_segment(local_fields, plan, u, sub.lat0, seg)
