"""The original convolution-form filter (paper eq. 2) — the baseline.

The original AGCM performed the polar filtering as a direct circular
convolution in physical space,

    f'(i) = sum_n S(n) f(i - n),

at a cost of O(N^2) per latitude line versus the FFT's O(N log N) — the
first of the two problems Section 3.1 identifies.  The kernels here are
honest direct convolutions (a circulant matrix-vector product), not FFTs
in disguise, so that measured and charged costs both scale as the paper's
complexity analysis says.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.spectral import PolarFilter


def circulant_matrix(kernel: np.ndarray) -> np.ndarray:
    """The (N, N) circulant matrix whose rows implement eq. (2).

    ``C[i, j] = kernel[(i - j) mod N]`` so that ``C @ f`` is the circular
    convolution of ``f`` with ``kernel``.
    """
    n = kernel.shape[0]
    idx = (np.arange(n)[:, None] - np.arange(n)[None, :]) % n
    return kernel[idx]


def convolve_line(line: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Directly circular-convolve one line (or stack of lines) with a kernel.

    ``line`` has shape (N,) or (N, K) — K layers filtered together.
    Cost: 2 N^2 flops per line (the paper's O(N x M) with M ~ N taps).
    """
    n = kernel.shape[0]
    if line.shape[0] != n:
        raise ValueError(f"line length {line.shape[0]} != kernel length {n}")
    return circulant_matrix(kernel) @ line


def convolution_filter_rows(
    field: np.ndarray, pfilter: PolarFilter, lat_indices: Sequence[int] | None = None
) -> np.ndarray:
    """Filter the selected latitude rows of a (nlat, nlon[, K]) field.

    Returns a copy with the rows replaced by their convolution-filtered
    values; other rows are untouched.  ``lat_indices`` defaults to the
    filter's own mask.
    """
    nlat, nlon = field.shape[:2]
    if nlon != pfilter.nlon:
        raise ValueError(f"field nlon {nlon} != filter N {pfilter.nlon}")
    if lat_indices is None:
        lat_indices = pfilter.latitude_indices()
    out = field.copy()
    for j in lat_indices:
        kernel = pfilter.kernel(int(j))
        out[j] = convolve_line(field[j], kernel)
    return out


def convolution_flop_count(
    nlon: int, nrows: int, nlayers: int = 1
) -> float:
    """Flops charged for convolution-filtering ``nrows`` lines of K layers.

    Direct form: 2 N^2 multiply-adds per line per layer.
    """
    return 2.0 * nlon * nlon * nrows * nlayers
