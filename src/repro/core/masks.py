"""Filter plans: which variables' latitude rows each filter touches.

Paper Section 3.3: weak and strong filterings are performed on *different
sets of physical variables*; the optimised code filters all weakly
filtered variables concurrently, and likewise all strongly filtered ones
(there is no data dependency within a set).  A :class:`FilterPlan`
enumerates the resulting *row units* — one filtered latitude row of one
variable, carrying all vertical layers — which are the indivisible items
the load balancer redistributes (eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.spectral import PolarFilter, strong_filter, weak_filter
from repro.grid.sphere import SphericalGrid


@dataclass(frozen=True)
class RowUnit:
    """One filtered latitude row of one variable (all K layers together).

    Attributes
    ----------
    var:
        Variable name.
    lat:
        Global latitude index of the row.
    filter_name:
        Which filter ("strong"/"weak") applies.
    """

    var: str
    lat: int
    filter_name: str


@dataclass(frozen=True)
class FilterPlan:
    """The full set of row units for one filtering pass.

    Built once at setup (the paper stresses the setup is one-time and
    problem-size independent in cost); reused every time step.
    """

    grid: SphericalGrid
    strong: PolarFilter
    weak: PolarFilter
    strong_vars: Tuple[str, ...]
    weak_vars: Tuple[str, ...]
    units: Tuple[RowUnit, ...]

    @property
    def total_rows(self) -> int:
        """The paper's ``sum_j R_j`` — total row units to filter."""
        return len(self.units)

    def rows_per_variable(self) -> Dict[str, int]:
        """R_j for each variable j."""
        counts: Dict[str, int] = {}
        for u in self.units:
            counts[u.var] = counts.get(u.var, 0) + 1
        return counts

    def filter_for(self, unit: RowUnit) -> PolarFilter:
        """The PolarFilter instance that applies to a row unit."""
        return self.strong if unit.filter_name == "strong" else self.weak

    def units_in_lat_range(self, lat0: int, lat1: int) -> List[RowUnit]:
        """Row units whose latitude lies in the half-open range [lat0, lat1)."""
        return [u for u in self.units if lat0 <= u.lat < lat1]

    def balanced_rows_per_group(self, ngroups: int) -> List[int]:
        """Paper eq. (3): ~``ceil(sum_j R_j / n)`` rows per group.

        Returns the exact balanced row counts (front-loaded remainder).
        """
        from repro.util.partition import block_partition

        return block_partition(self.total_rows, ngroups)


#: Default variable assignment, mirroring the AGCM's convention that the
#: wind tendencies need the strong filter and the thermodynamic variables
#: the weak one.
DEFAULT_STRONG_VARS = ("u", "v", "pt")
DEFAULT_WEAK_VARS = ("ps", "q")


def make_filter_plan(
    grid: SphericalGrid,
    strong_vars: Sequence[str] = DEFAULT_STRONG_VARS,
    weak_vars: Sequence[str] = DEFAULT_WEAK_VARS,
) -> FilterPlan:
    """Construct the filter plan for a grid and variable assignment.

    Row units are ordered by (filter, variable, latitude) — a fixed
    deterministic order every rank can compute locally without
    communication, which is what keeps the setup bookkeeping cheap.
    """
    overlap = set(strong_vars) & set(weak_vars)
    if overlap:
        raise ValueError(f"variables in both filter sets: {sorted(overlap)}")
    s_filter = strong_filter(grid)
    w_filter = weak_filter(grid)
    units: List[RowUnit] = []
    for var in strong_vars:
        for lat in s_filter.latitude_indices():
            units.append(RowUnit(var, int(lat), "strong"))
    for var in weak_vars:
        for lat in w_filter.latitude_indices():
            units.append(RowUnit(var, int(lat), "weak"))
    return FilterPlan(
        grid=grid,
        strong=s_filter,
        weak=w_filter,
        strong_vars=tuple(strong_vars),
        weak_vars=tuple(weak_vars),
        units=tuple(units),
    )
