"""Straggler mitigation: scheme-3 balancing driven by *measured* times.

The paper's scheme-3 pairwise exchange balances physics using workload
estimates.  Against an injected straggler (a rank whose compute runs
2x slower) any static estimate is wrong — the imbalance is a property of
the *machine*, not the workload.  The fix, following the dynamic
redistribution literature, is to feed the balancer measured per-rank
virtual times from the previous physics pass.

Two subtleties make the naive approach fail:

* The previously measured quantity (elapsed region time) includes the
  allgather *wait*, which equalises apparent loads — fast ranks wait for
  the straggler, so everyone appears equally loaded and nothing moves.
  :class:`LoadMeasurement` therefore records compute-only seconds.
* Measuring *after* columns have moved and re-planning from identity
  holdings oscillates.  :func:`estimate_rank_loads` instead derives each
  rank's per-column *rate* (seconds per held column — slowdown included,
  movement independent) and projects it onto the columns the rank owns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LoadMeasurement:
    """One rank's measured physics pass: compute-only, wait-free.

    ``compute_seconds`` covers the columns the rank actually *held*
    (after any balancing moves); ``own_columns`` is its static share.
    The pair gives a per-column rate valid regardless of how columns
    were distributed when the measurement was taken.
    """

    compute_seconds: float
    held_columns: int
    own_columns: int

    def as_tuple(self) -> Tuple[float, int, int]:
        """Compact wire form for allgather (8 bytes per field)."""
        return (self.compute_seconds, self.held_columns, self.own_columns)

    @classmethod
    def from_tuple(cls, t: Sequence[float]) -> "LoadMeasurement":
        return cls(float(t[0]), int(t[1]), int(t[2]))


def estimate_rank_loads(
    measurements: Sequence[LoadMeasurement],
) -> np.ndarray:
    """Project measured per-column rates onto owned columns.

    ``load[r] = rate[r] * own_columns[r]`` where ``rate[r] =
    compute_seconds / held_columns``.  Ranks with no measurement signal
    (zero held columns or zero time) fall back to the mean rate of the
    others, so a rank that shipped away everything last pass still gets
    a sane estimate.  Identical inputs yield identical outputs on every
    rank — the planner stays SPMD-consistent.
    """
    rates: List[Optional[float]] = []
    for m in measurements:
        if m.held_columns > 0 and m.compute_seconds > 0:
            rates.append(m.compute_seconds / m.held_columns)
        else:
            rates.append(None)
    known = [r for r in rates if r is not None]
    fallback = float(np.mean(known)) if known else 1.0
    return np.array(
        [
            (r if r is not None else fallback) * m.own_columns
            for r, m in zip(rates, measurements)
        ]
    )


def physics_imbalance(steady_seconds: Sequence[float]) -> float:
    """Paper-style ``(max - mean) / mean`` over per-rank physics seconds."""
    arr = np.asarray(steady_seconds, dtype=float)
    if arr.size == 0:
        return 0.0
    mean = float(arr.mean())
    if mean == 0:
        return 0.0
    return float((arr.max() - mean) / mean)


def run_straggler_demo(
    mitigate: bool,
    slowdown: float = 2.0,
    machine=None,
    preset: str = "tiny",
    dims: Tuple[int, int] = (2, 2),
    nsteps: int = 12,
    physics_every: int = 2,
    straggler: int = 0,
    seed: int = 0,
):
    """Run the AGCM with one ``slowdown``x straggler, with/without the
    measured-time-driven balancer; returns the imbalance and timings.

    The reported ``imbalance`` is over steady-state physics compute
    seconds — every call after the first, i.e. the calls where the
    balancer has a measurement to act on.
    """
    from repro.faults.plan import FaultPlan, SlowdownWindow
    from repro.grid import Decomposition2D
    from repro.model.config import make_config
    from repro.model.parallel_agcm import agcm_rank_program
    from repro.parallel import ProcessorMesh, Simulator, T3D

    if machine is None:
        machine = T3D
    cfg = make_config(preset).with_(
        physics_lb=mitigate, physics_every=physics_every
    )
    mesh = ProcessorMesh(*dims)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    plan = FaultPlan(
        seed=seed,
        slowdowns=(SlowdownWindow(straggler, 0.0, math.inf, slowdown),),
    )
    res = Simulator(mesh.size, machine, faults=plan).run(
        agcm_rank_program, cfg, decomp, nsteps
    )
    steady = [r["phys_compute_steady"] for r in res.returns]
    return {
        "mitigate": mitigate,
        "imbalance": physics_imbalance(steady),
        "steady_seconds": steady,
        "columns_moved": sum(r["columns_moved"] for r in res.returns),
        "elapsed": res.elapsed,
        "result": res,
    }


def straggler_imbalance_metrics(**kwargs) -> dict:
    """Static-vs-mitigated straggler imbalance, for the bench record."""
    static = run_straggler_demo(mitigate=False, **kwargs)
    mitigated = run_straggler_demo(mitigate=True, **kwargs)
    return {
        "agcm_straggler_imbalance_static": static["imbalance"],
        "agcm_straggler_imbalance_mitigated": mitigated["imbalance"],
        "agcm_straggler_elapsed_static": static["elapsed"],
        "agcm_straggler_elapsed_mitigated": mitigated["elapsed"],
    }
