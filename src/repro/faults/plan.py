"""Seeded, fully deterministic fault plans for the virtual machine.

A :class:`FaultPlan` decides *in advance* — as a pure function of a seed
and the plan's contents — everything the machine will do wrong during a
run:

* **Slowdowns**: per-rank time windows during which every ``Compute``
  op runs ``factor`` times slower (a straggling node).
* **Link faults**: per-link (or any-link) windows with a message drop
  probability and/or extra delivery delay.  A dropped message is
  retransmitted after a timeout with exponential backoff (see
  :class:`RetryPolicy`); the final attempt always succeeds, so faults
  degrade performance without changing program semantics.
* **Rank failures**: a virtual time at which a rank permanently dies,
  either raising :class:`~repro.parallel.scheduler.RankFailedError`
  (``mode="stop"``) or silently hanging until the run deadlocks
  (``mode="hang"``).

Determinism contract
--------------------
Every decision is a pure function of ``(plan.seed, src, dst, seq,
attempt)`` hashed through CRC-32 — no global RNG state, no wall-clock.
Two simulations with equal plans produce bit-identical traces; see
``docs/resilience.md``.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.validation import require

#: Wildcard endpoint for :class:`LinkFault` — matches every rank.
ANY = -1


def _unit(seed: int, *parts: int) -> float:
    """Deterministic hash of integers to [0, 1) — the plan's coin flips."""
    data = struct.pack(f"<{1 + len(parts)}q", seed, *parts)
    return zlib.crc32(data) / 4294967296.0


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retransmit model for dropped messages.

    Attempt ``k`` (0-based) is retransmitted ``timeout * backoff**k``
    seconds after its injection if it was dropped.  The final attempt
    (``max_attempts - 1``) always succeeds, bounding the worst-case
    delivery delay and guaranteeing liveness under any drop rate.
    """

    timeout: float = 5.0e-4
    backoff: float = 2.0
    max_attempts: int = 6

    def __post_init__(self):
        if self.timeout <= 0:
            raise ValueError(f"retry timeout must be positive, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"retry backoff must be >= 1, got {self.backoff}")
        if self.max_attempts < 1:
            raise ValueError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}"
            )


@dataclass(frozen=True)
class SlowdownWindow:
    """Rank ``rank`` computes ``factor``x slower during ``[t0, t1)``."""

    rank: int
    t0: float
    t1: float
    factor: float

    def __post_init__(self):
        require(self.rank >= 0, f"slowdown rank must be >= 0, got {self.rank}")
        require(self.t0 >= 0, f"slowdown window must start at t >= 0, got {self.t0}")
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")
        if self.t1 <= self.t0:
            raise ValueError(f"empty slowdown window [{self.t0}, {self.t1})")


@dataclass(frozen=True)
class LinkFault:
    """Drop probability / extra delay on the ``src -> dst`` link in ``[t0, t1)``.

    Endpoints may be :data:`ANY` (-1) to match every rank.  Overlapping
    faults combine as max(drop_rate) and sum(extra_delay).
    """

    src: int = ANY
    dst: int = ANY
    t0: float = 0.0
    t1: float = math.inf
    drop_rate: float = 0.0
    extra_delay: float = 0.0

    def __post_init__(self):
        require(
            self.src >= ANY,
            f"link-fault src must be a rank >= 0 or ANY (-1), got {self.src}",
        )
        require(
            self.dst >= ANY,
            f"link-fault dst must be a rank >= 0 or ANY (-1), got {self.dst}",
        )
        require(self.t0 >= 0, f"link-fault window must start at t >= 0, got {self.t0}")
        require(
            self.t1 > self.t0,
            f"empty link-fault window [{self.t0}, {self.t1})",
        )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}"
            )
        if self.extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {self.extra_delay}")

    def matches(self, src: int, dst: int, t: float) -> bool:
        return (
            self.src in (ANY, src)
            and self.dst in (ANY, dst)
            and self.t0 <= t < self.t1
        )


@dataclass(frozen=True)
class RankFailure:
    """Rank ``rank`` dies at the first op boundary at or after time ``at``.

    ``mode="stop"`` aborts the run with ``RankFailedError`` (the detected
    failure a recovery driver restarts from); ``mode="hang"`` leaves the
    rank silently blocked so its peers eventually raise ``DeadlockError``
    (an undetected failure).
    """

    rank: int
    at: float
    mode: str = "stop"

    def __post_init__(self):
        require(self.rank >= 0, f"failure rank must be >= 0, got {self.rank}")
        if self.mode not in ("stop", "hang"):
            raise ValueError(f"failure mode must be 'stop' or 'hang', got {self.mode!r}")
        if self.at < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class Delivery:
    """The planned fate of one message: dropped attempts, then delivery.

    ``drop_times`` are the injection times of the failed attempts (empty
    for a clean send); ``inject_time`` is the injection time of the
    successful attempt; ``arrival`` is when the payload reaches the
    destination mailbox.
    """

    drop_times: Tuple[float, ...]
    inject_time: float
    arrival: float

    @property
    def retransmissions(self) -> int:
        """Attempts beyond the first — each re-counted exactly once."""
        return len(self.drop_times)


@dataclass(frozen=True)
class FaultSpec:
    """High-level recipe :meth:`FaultPlan.from_spec` expands with a seed.

    ``slowdown_window`` and ``failure_window`` are *fractions* of the
    ``horizon`` passed to ``from_spec`` (the expected fault-free
    makespan), so specs stay machine-independent.
    """

    stragglers: int = 0
    slowdown_factor: float = 2.0
    slowdown_window: Tuple[float, float] = (0.0, math.inf)
    drop_rate: float = 0.0
    extra_delay: float = 0.0
    failures: int = 0
    failure_window: Tuple[float, float] = (0.4, 0.7)
    failure_mode: str = "stop"


@dataclass(frozen=True)
class FaultPlan:
    """Everything the virtual machine will do wrong, decided up front.

    Frozen and hashable: two plans compare equal iff they schedule the
    identical fault sequence, which is what the determinism tests assert.
    """

    seed: int
    slowdowns: Tuple[SlowdownWindow, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()
    failures: Tuple[RankFailure, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        ranks = [f.rank for f in self.failures]
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"at most one failure per rank, got ranks {ranks}")
        by_rank: Dict[int, List[SlowdownWindow]] = {}
        for w in self.slowdowns:
            by_rank.setdefault(w.rank, []).append(w)
        for rank, wins in by_rank.items():
            wins.sort(key=lambda w: (w.t0, w.t1))
            for a, b in zip(wins, wins[1:]):
                if b.t0 < a.t1:
                    raise ValueError(
                        f"overlapping slowdown windows on rank {rank}: "
                        f"[{a.t0:g}, {a.t1:g}) x{a.factor:g} and "
                        f"[{b.t0:g}, {b.t1:g}) x{b.factor:g}; merge them "
                        "into one window (pick the factor you mean) or "
                        "make them disjoint"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: FaultSpec,
        nranks: int,
        seed: int,
        horizon: float = 1.0,
        retry: Optional[RetryPolicy] = None,
    ) -> "FaultPlan":
        """Expand a :class:`FaultSpec` into a concrete seeded plan.

        Straggler and failure ranks are drawn (disjointly) from a seeded
        permutation; window fractions scale by ``horizon``.  The same
        ``(spec, nranks, seed, horizon)`` always yields the same plan.
        """
        if spec.stragglers + spec.failures > nranks:
            raise ValueError(
                f"spec wants {spec.stragglers} stragglers + {spec.failures} "
                f"failures but only {nranks} ranks exist"
            )
        rng = np.random.default_rng(seed)
        perm = [int(r) for r in rng.permutation(nranks)]
        w0, w1 = spec.slowdown_window
        slowdowns = tuple(
            SlowdownWindow(
                rank=r,
                t0=w0 * horizon,
                t1=w1 * horizon if math.isfinite(w1) else math.inf,
                factor=spec.slowdown_factor,
            )
            for r in perm[: spec.stragglers]
        )
        link_faults: Tuple[LinkFault, ...] = ()
        if spec.drop_rate > 0 or spec.extra_delay > 0:
            link_faults = (
                LinkFault(drop_rate=spec.drop_rate, extra_delay=spec.extra_delay),
            )
        f0, f1 = spec.failure_window
        failures = tuple(
            RankFailure(
                rank=r,
                at=(f0 + (f1 - f0) * float(rng.random())) * horizon,
                mode=spec.failure_mode,
            )
            for r in perm[spec.stragglers : spec.stragglers + spec.failures]
        )
        return cls(
            seed=seed,
            slowdowns=slowdowns,
            link_faults=link_faults,
            failures=failures,
            retry=retry if retry is not None else RetryPolicy(),
        )

    # -- scheduler queries ---------------------------------------------
    def validate_ranks(self, nranks: int) -> None:
        """Check every rank the plan names exists on an ``nranks`` mesh.

        Called by :class:`~repro.parallel.scheduler.Simulator` at
        construction, so a plan built for the wrong mesh fails fast with
        an actionable message instead of silently never firing (or
        firing on the wrong link).
        """
        hi = nranks - 1
        for w in self.slowdowns:
            require(
                w.rank < nranks,
                f"slowdown rank {w.rank} out of range for {nranks} ranks "
                f"(valid: 0..{hi})",
            )
        for lf in self.link_faults:
            require(
                lf.src < nranks,
                f"link-fault src {lf.src} out of range for {nranks} ranks "
                f"(valid: 0..{hi} or ANY)",
            )
            require(
                lf.dst < nranks,
                f"link-fault dst {lf.dst} out of range for {nranks} ranks "
                f"(valid: 0..{hi} or ANY)",
            )
        for f in self.failures:
            require(
                f.rank < nranks,
                f"failure rank {f.rank} out of range for {nranks} ranks "
                f"(valid: 0..{hi})",
            )

    def stretch_compute(self, rank: int, start: float, seconds: float) -> float:
        """Elapsed time of a compute op of nominal ``seconds`` starting at
        ``start`` on ``rank``, integrated piecewise across slowdown
        window edges.  (Same-rank windows are validated disjoint at plan
        construction; the max-factor rule below is defensive only.)"""
        if seconds <= 0.0:
            return seconds
        wins = [w for w in self.slowdowns if w.rank == rank]
        if not wins:
            return seconds
        t = start
        remaining = seconds  # nominal work still to do
        elapsed = 0.0
        while remaining > 0.0:
            factor = 1.0
            next_edge = math.inf
            for w in wins:
                if w.t0 <= t < w.t1:
                    factor = max(factor, w.factor)
                    if math.isfinite(w.t1):
                        next_edge = min(next_edge, w.t1)
                elif w.t0 > t:
                    next_edge = min(next_edge, w.t0)
            if not math.isfinite(next_edge):
                elapsed += remaining * factor
                break
            span = next_edge - t
            work = span / factor
            if work >= remaining:
                elapsed += remaining * factor
                break
            elapsed += span
            remaining -= work
            t = next_edge
        return elapsed

    def link_conditions(self, src: int, dst: int, t: float) -> Tuple[float, float]:
        """``(drop_rate, extra_delay)`` on the link at virtual time ``t``."""
        rate = 0.0
        delay = 0.0
        for lf in self.link_faults:
            if lf.matches(src, dst, t):
                rate = max(rate, lf.drop_rate)
                delay += lf.extra_delay
        return rate, delay

    def plan_delivery(
        self, src: int, dst: int, seq: int, t_send: float, message_time: float
    ) -> Delivery:
        """Decide the fate of the ``seq``-th message on ``src -> dst``.

        Each attempt flips a seeded coin against the link's drop rate at
        its injection time; drops schedule a retransmission after
        ``timeout * backoff**attempt``.  The last attempt is forced to
        succeed (liveness), so ``arrival`` is always finite.
        """
        if not self.link_faults:
            return Delivery((), t_send, t_send + message_time)
        retry = self.retry
        drops: List[float] = []
        inject = t_send
        for attempt in range(retry.max_attempts):
            rate, delay = self.link_conditions(src, dst, inject)
            final = attempt == retry.max_attempts - 1
            if (
                not final
                and rate > 0.0
                and _unit(self.seed, src, dst, seq, attempt) < rate
            ):
                drops.append(inject)
                inject += retry.timeout * retry.backoff**attempt
                continue
            return Delivery(tuple(drops), inject, inject + message_time + delay)
        raise AssertionError("unreachable: final attempt always delivers")

    def failure_for(self, rank: int) -> Optional[RankFailure]:
        """The failure scheduled for ``rank``, if any."""
        for f in self.failures:
            if f.rank == rank:
                return f
        return None

    # -- recovery helpers ----------------------------------------------
    def without_failure(self, rank: int) -> "FaultPlan":
        """A copy with ``rank``'s failure consumed (for restart attempts:
        a transient failure must not re-fire when clocks reset to 0)."""
        return replace(
            self, failures=tuple(f for f in self.failures if f.rank != rank)
        )

    def without_failures(self) -> "FaultPlan":
        """A copy with every rank failure removed (drops/slowdowns stay)."""
        return replace(self, failures=())

    # -- introspection --------------------------------------------------
    def describe(self) -> str:
        """One line per scheduled fault, for logs and experiment tables."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for w in self.slowdowns:
            lines.append(
                f"  slowdown: rank {w.rank} x{w.factor:g} in [{w.t0:g}, {w.t1:g})"
            )
        for lf in self.link_faults:
            src = "*" if lf.src == ANY else lf.src
            dst = "*" if lf.dst == ANY else lf.dst
            lines.append(
                f"  link {src}->{dst}: drop {100 * lf.drop_rate:g}% "
                f"delay +{lf.extra_delay:g}s in [{lf.t0:g}, {lf.t1:g})"
            )
        for f in self.failures:
            lines.append(f"  failure: rank {f.rank} at t={f.at:g} ({f.mode})")
        if len(lines) == 1:
            lines.append("  (no faults)")
        return "\n".join(lines)
