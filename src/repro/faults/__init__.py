"""Deterministic fault injection, checkpoint/restart, and mitigation.

The resilience axis of the virtual machine (see ``docs/resilience.md``):

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` scheduling
  compute slowdowns, message drops/delays with retransmit, and rank
  failures; pass it to ``Simulator(..., faults=plan)``.
* :mod:`repro.faults.checkpoint` — coordinated checkpoints of the
  parallel AGCM's prognostic state and restart-from-last-checkpoint
  after an injected failure (:func:`run_agcm_with_recovery`).
* :mod:`repro.faults.mitigation` — measured-time-driven scheme-3
  rebalancing that absorbs injected stragglers.

``checkpoint`` symbols are loaded lazily: that module imports the model
package, which itself imports :mod:`repro.faults.mitigation`, and the
lazy hop keeps the cycle open.
"""

from repro.faults.mitigation import (
    LoadMeasurement,
    estimate_rank_loads,
    physics_imbalance,
    run_straggler_demo,
    straggler_imbalance_metrics,
)
from repro.faults.plan import (
    ANY,
    Delivery,
    FaultPlan,
    FaultSpec,
    LinkFault,
    RankFailure,
    RetryPolicy,
    SlowdownWindow,
)

_CHECKPOINT_SYMBOLS = (
    "CheckpointCorruptError",
    "CheckpointData",
    "Checkpointer",
    "RecoveryOutcome",
    "load_checkpoint",
    "run_agcm_with_recovery",
    "save_checkpoint",
)

__all__ = [
    "ANY",
    "Delivery",
    "FaultPlan",
    "FaultSpec",
    "LinkFault",
    "RankFailure",
    "RetryPolicy",
    "SlowdownWindow",
    "LoadMeasurement",
    "estimate_rank_loads",
    "physics_imbalance",
    "run_straggler_demo",
    "straggler_imbalance_metrics",
    *_CHECKPOINT_SYMBOLS,
]


def __getattr__(name):
    if name in _CHECKPOINT_SYMBOLS:
        from repro.faults import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
