"""Coordinated checkpoint/restart of the parallel AGCM under faults.

A checkpoint is *step-consistent*: every rank contributes its block of
the prognostic state at the same step boundary, the blocks funnel to
rank 0 through a binomial gather (real messages, real cost), and rank 0
writes one lossless ``.npz`` archive, charged at the
:mod:`repro.model.parallel_io` host-I/O rate.  Because the snapshot
holds *both* leapfrog levels plus the persistent physics forcing and
the balancer's measurement state, a restarted integration replays the
remaining steps bit-for-bit — the property the fault-recovery
differential pair asserts against the fault-free serial model.

:func:`run_agcm_with_recovery` is the driver: it runs the AGCM under a
:class:`~repro.faults.plan.FaultPlan`, and when an injected rank
failure aborts the simulation it restarts from the last checkpoint
(cold-start from step 0 if none exists) with that failure consumed, so
a transient fault does not re-fire when virtual clocks reset.
"""

from __future__ import annotations

import json
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dynamics.state import PROGNOSTIC_NAMES
from repro.grid.decomposition import Decomposition2D
from repro.model.config import AGCMConfig
from repro.model.parallel_agcm import agcm_rank_program
from repro.model.parallel_io import IO_BANDWIDTH, io_read_seconds, io_write_seconds
from repro.parallel import collectives as coll
from repro.parallel.machine import MachineModel
from repro.parallel.scheduler import RankFailedError, Simulator
from repro.parallel.trace import SimResult

_TAG_CKPT_BARRIER = 0x00EE0002


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file failed to load or verify.

    Raised by :func:`load_checkpoint` for anything from a truncated
    archive to a content-checksum mismatch — one clear exception instead
    of whatever numpy/zipfile error the corruption happened to trigger.
    Recovery drivers treat it as "no checkpoint" (cold start) rather
    than dying mid-recovery.
    """

    def __init__(self, path, reason: str):
        super().__init__(f"checkpoint {path} is corrupt: {reason}")
        self.path = str(path)
        self.reason = reason


def _content_checksum(arrays: Dict[str, np.ndarray]) -> int:
    """CRC-32 over every array's name, dtype, shape and bytes.

    Deterministic (sorted key order) so save and load agree regardless
    of dict ordering.
    """
    crc = 0
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        header = f"{name}:{a.dtype.str}:{a.shape}".encode()
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(a.tobytes(), crc)
    return crc


@dataclass
class CheckpointData:
    """One step-consistent global snapshot of the parallel AGCM.

    ``now``/``prev`` are the two leapfrog levels (global arrays),
    ``forcing_pt``/``forcing_q`` the persistent physics forcing, and
    ``counters`` the per-rank restart bookkeeping (load measurement,
    physics-call and column-movement counts).
    """

    step: int
    time: float
    now: Dict[str, np.ndarray]
    prev: Dict[str, np.ndarray]
    forcing_pt: np.ndarray
    forcing_q: np.ndarray
    counters: List[dict]

    def total_nbytes(self) -> int:
        """Bytes of array state in the snapshot (the I/O charge basis)."""
        n = self.forcing_pt.nbytes + self.forcing_q.nbytes
        n += sum(a.nbytes for a in self.now.values())
        n += sum(a.nbytes for a in self.prev.values())
        return int(n)

    def scatter_state(self, ctx, decomp: Decomposition2D,
                      io_bandwidth: float = IO_BANDWIDTH):
        """Generator: rank 0 charges the host read and scatters blocks.

        Returns each rank's restart bundle: local ``now``/``prev``
        fields, forcing blocks, model time, start step and counters.
        """
        if ctx.rank == 0:
            yield from ctx.compute(
                seconds=io_read_seconds(self.total_nbytes(), io_bandwidth)
            )
            blocks_now = {
                n: decomp.scatter(self.now[n]) for n in PROGNOSTIC_NAMES
            }
            blocks_prev = {
                n: decomp.scatter(self.prev[n]) for n in PROGNOSTIC_NAMES
            }
            blocks_fpt = decomp.scatter(self.forcing_pt)
            blocks_fq = decomp.scatter(self.forcing_q)
            payloads = [
                {
                    "now": {
                        n: np.ascontiguousarray(blocks_now[n][r])
                        for n in PROGNOSTIC_NAMES
                    },
                    "prev": {
                        n: np.ascontiguousarray(blocks_prev[n][r])
                        for n in PROGNOSTIC_NAMES
                    },
                    "forcing_pt": np.ascontiguousarray(blocks_fpt[r]),
                    "forcing_q": np.ascontiguousarray(blocks_fq[r]),
                    "time": self.time,
                    "step": self.step,
                    "counters": self.counters[r],
                }
                for r in range(ctx.size)
            ]
            mine = yield from ctx.scatter(payloads, root=0)
        else:
            mine = yield from ctx.scatter(None, root=0)
        return mine


def save_checkpoint(path, data: CheckpointData) -> Path:
    """Write a snapshot to ``path`` as a lossless ``.npz`` archive.

    The metadata records a CRC-32 content checksum over every array so
    :func:`load_checkpoint` can verify integrity before a restart
    trusts the state.
    """
    path = Path(path)
    arrays = {f"now_{n}": data.now[n] for n in PROGNOSTIC_NAMES}
    arrays.update({f"prev_{n}": data.prev[n] for n in PROGNOSTIC_NAMES})
    arrays["forcing_pt"] = data.forcing_pt
    arrays["forcing_q"] = data.forcing_q
    meta = {
        "step": data.step,
        "time": data.time,
        "counters": data.counters,
        "checksum": _content_checksum(arrays),
    }
    arrays["meta"] = np.array(json.dumps(meta))
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return path


def load_checkpoint(path) -> CheckpointData:
    """Read and verify a snapshot written by :func:`save_checkpoint`.

    Raises :class:`CheckpointCorruptError` on a truncated or otherwise
    unreadable archive, on missing keys, and on a content-checksum
    mismatch — never an opaque numpy/zipfile error mid-recovery.  A
    genuinely missing file still raises ``FileNotFoundError`` (that is
    a different condition: nothing was ever written).
    """
    try:
        with np.load(path, allow_pickle=False) as z:
            meta = json.loads(str(z["meta"]))
            arrays = {
                key: z[key].copy() for key in z.files if key != "meta"
            }
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CheckpointCorruptError(
            path, f"unreadable archive ({type(exc).__name__}: {exc})"
        ) from exc
    stored = meta.get("checksum")
    if stored is None:
        raise CheckpointCorruptError(path, "no content checksum in metadata")
    actual = _content_checksum(arrays)
    if actual != stored:
        raise CheckpointCorruptError(
            path,
            f"content checksum mismatch (stored {stored}, computed {actual})",
        )
    try:
        counters = []
        for c in meta["counters"]:
            c = dict(c)
            if c.get("measure") is not None:
                c["measure"] = tuple(c["measure"])
            counters.append(c)
        return CheckpointData(
            step=int(meta["step"]),
            time=float(meta["time"]),
            now={n: arrays[f"now_{n}"] for n in PROGNOSTIC_NAMES},
            prev={n: arrays[f"prev_{n}"] for n in PROGNOSTIC_NAMES},
            forcing_pt=arrays["forcing_pt"],
            forcing_q=arrays["forcing_q"],
            counters=counters,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorruptError(
            path, f"malformed contents ({type(exc).__name__}: {exc})"
        ) from exc


class Checkpointer:
    """Periodic coordinated checkpoints every ``every`` steps.

    One instance is shared by all rank programs of a run (rank 0 is the
    only writer).  The file at ``path`` always holds the most recent
    snapshot; :meth:`load` returns it for a restart.
    """

    def __init__(self, every: int, path, io_bandwidth: float = IO_BANDWIDTH):
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {every}")
        self.every = every
        self.path = Path(path)
        if self.path.suffix != ".npz":
            self.path = self.path.with_suffix(self.path.suffix + ".npz")
        self.io_bandwidth = io_bandwidth
        self.written = 0
        self.last_step: Optional[int] = None

    def due(self, step: int, nsteps: int) -> bool:
        """Checkpoint after ``step``?  (Never after the final step — a
        snapshot nothing could restart into is pure overhead.)"""
        done = step + 1
        return done % self.every == 0 and done < nsteps

    def load(self) -> Optional[CheckpointData]:
        """The most recent snapshot, or None if nothing was written."""
        if not self.written:
            return None
        return load_checkpoint(self.path)

    def save(self, ctx, decomp: Decomposition2D, cfg: AGCMConfig, *,
             step: int, time_now: float,
             now: Dict[str, np.ndarray], prev: Dict[str, np.ndarray],
             forcing_pt: np.ndarray, forcing_q: np.ndarray,
             counters: dict):
        """Generator: gather every rank's block to rank 0 and write.

        All ranks synchronise on a barrier afterwards — the coordinated
        checkpoint is a global pause whose cost (gather messages plus
        rank-0 host write) lands in the ``"checkpoint"`` trace phase.
        """
        payload = {
            f"now_{n}": np.ascontiguousarray(now[n]) for n in PROGNOSTIC_NAMES
        }
        payload.update({
            f"prev_{n}": np.ascontiguousarray(prev[n])
            for n in PROGNOSTIC_NAMES
        })
        payload["forcing_pt"] = np.ascontiguousarray(forcing_pt)
        payload["forcing_q"] = np.ascontiguousarray(forcing_q)
        payload["counters"] = counters
        gathered = yield from coll.gather_binomial(ctx, payload, root=0)
        if ctx.rank == 0:
            def assemble(key: str) -> np.ndarray:
                return decomp.gather(
                    [gathered[r][key] for r in range(ctx.size)]
                )

            data = CheckpointData(
                step=step,
                time=time_now,
                now={n: assemble(f"now_{n}") for n in PROGNOSTIC_NAMES},
                prev={n: assemble(f"prev_{n}") for n in PROGNOSTIC_NAMES},
                forcing_pt=assemble("forcing_pt"),
                forcing_q=assemble("forcing_q"),
                counters=[gathered[r]["counters"] for r in range(ctx.size)],
            )
            save_checkpoint(self.path, data)
            self.written += 1
            self.last_step = step
            yield from ctx.compute(
                seconds=io_write_seconds(data.total_nbytes(), self.io_bandwidth)
            )
        yield from ctx.barrier(tag=_TAG_CKPT_BARRIER)


@dataclass
class RecoveryOutcome:
    """What a fault-tolerant AGCM run went through end to end.

    ``total_elapsed`` charges every attempt: virtual time lost up to
    each detected failure, plus the successful attempt's makespan.
    ``resumed_steps`` records each attempt's start step (0 = cold).
    """

    result: SimResult
    total_elapsed: float
    restarts: int
    failures: List[Tuple[int, float]]
    resumed_steps: List[int]
    checkpoints_written: int


def run_agcm_with_recovery(
    cfg: AGCMConfig,
    decomp: Decomposition2D,
    nsteps: int,
    machine: MachineModel,
    *,
    faults=None,
    checkpoint_every: int = 0,
    checkpoint_path=None,
    record_events: bool = False,
    return_fields: bool = True,
    max_restarts: int = 8,
    restart_overhead: float = 0.0,
) -> RecoveryOutcome:
    """Run the parallel AGCM to completion despite injected failures.

    Each :class:`~repro.parallel.scheduler.RankFailedError` consumes
    that rank's failure from the plan (drops and slowdowns stay active)
    and restarts from the last checkpoint — or from step 0 if none was
    written (``checkpoint_every=0`` disables checkpointing entirely) or
    the file fails its integrity check (a
    :class:`CheckpointCorruptError` is downgraded to a warning and a
    cold start — a broken snapshot must not kill the recovery path).
    ``restart_overhead`` adds a fixed virtual-time penalty per restart
    (job-requeue cost).  Raises after ``max_restarts`` failures.
    """
    ckpt = None
    if checkpoint_every:
        if checkpoint_path is None:
            raise ValueError("checkpoint_every > 0 requires checkpoint_path")
        ckpt = Checkpointer(checkpoint_every, checkpoint_path)
    plan = faults
    resume = None
    total = 0.0
    failures: List[Tuple[int, float]] = []
    resumed_steps = [0]
    while True:
        sim = Simulator(
            decomp.mesh.size, machine,
            record_events=record_events, faults=plan,
        )
        try:
            res = sim.run(
                agcm_rank_program, cfg, decomp, nsteps, return_fields,
                checkpointer=ckpt, resume=resume,
            )
        except RankFailedError as exc:
            failures.append((exc.rank, exc.at))
            if len(failures) > max_restarts:
                raise
            total += exc.at + restart_overhead
            if plan is not None:
                plan = plan.without_failure(exc.rank)
            resume = None
            if ckpt is not None:
                try:
                    resume = ckpt.load()
                except CheckpointCorruptError as corrupt:
                    warnings.warn(
                        f"ignoring corrupt checkpoint during recovery "
                        f"(cold start instead): {corrupt}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            resumed_steps.append(resume.step if resume is not None else 0)
            continue
        total += res.elapsed
        return RecoveryOutcome(
            result=res,
            total_elapsed=total,
            restarts=len(failures),
            failures=failures,
            resumed_steps=resumed_steps,
            checkpoints_written=ckpt.written if ckpt is not None else 0,
        )
