#!/usr/bin/env python
"""Replay seeded bursty traffic against a running (or ad-hoc) gateway.

Two modes:

* **Self-contained benchmark** (no arguments): start a fresh gateway on
  an ephemeral port with an empty cache, replay the canonical seeded
  plan twice (cold, then warm), print the SLO summary::

      python tools/loadgen.py [--seed N] [--json-out PATH]

* **External target**: replay one pass against a gateway you started
  yourself (``python -m repro serve --port 8080 --cache-dir ...``)::

      python tools/loadgen.py --host 127.0.0.1 --port 8080

Exit code 1 if any request failed (non-200) or coalesced/hit answers
were not bit-identical per key; 0 otherwise.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.serve.bench import run_bench  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    DEFAULT_SEED,
    LoadPlan,
    replay,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="traffic plan seed (default: %(default)s)")
    parser.add_argument("--host", default=None,
                        help="replay against this running gateway instead "
                        "of starting one")
    parser.add_argument("--port", type=int, default=None,
                        help="port of the running gateway (with --host)")
    parser.add_argument("--json-out", default=None,
                        help="write the full SLO summary here")
    args = parser.parse_args(argv)

    if (args.host is None) != (args.port is None):
        parser.error("--host and --port go together")

    if args.host is not None:
        plan = LoadPlan.generate(args.seed)
        report = asyncio.run(replay(plan, args.host, args.port)).to_json()
        failed = report["failures"] + len(report["sha_conflicts"])
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        report = run_bench(args.seed)
        cold, warm = report["cold"], report["warm"]
        failed = (cold["failures"] + warm["failures"]
                  + len(cold["sha_conflicts"])
                  + len(warm["sha_conflicts"]))
        print(f"cold: coalesce rate {cold['coalesce_rate']:.0%}, "
              f"{cold['failures']} failed")
        print(f"warm: hit rate {warm['hit_rate']:.0%}, "
              f"hit p99 {warm['latency_us']['hit']['p99']} us, "
              f"{warm['throughput_rps']:.1f} rps, "
              f"{warm['failures']} failed")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"SLO summary written to {args.json_out}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
