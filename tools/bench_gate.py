#!/usr/bin/env python
"""Benchmark-regression gate: recompute, compare, record.

Recomputes the deterministic AGCM benchmarks (filtering tables, old/new
component timings), gates every tracked speedup ratio against the most
recent entry in ``BENCH_agcm.json``, and — when the gate passes —
appends the new entry to the trajectory.

Exit codes: 0 = pass (entry recorded), 2 = tracked ratio regressed
(entry NOT recorded, so the bad run can't become the next baseline),
1 = usage/internal error.

Usage::

    python tools/bench_gate.py                 # gate + record
    python tools/bench_gate.py --dry-run       # gate only, write nothing
    python tools/bench_gate.py --label "PR 12" # annotate the entry
    python tools/bench_gate.py --results-db [P]
        # gate against the trajectory in the repro.results index
        # (JSON file remains the fallback when the index is empty);
        # a recorded entry is also ingested into the index
"""

from __future__ import annotations

import argparse
import datetime
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.verify import bench_record  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_agcm.json"),
        help="trajectory file (default: BENCH_agcm.json at the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=bench_record.DEFAULT_THRESHOLD,
        help="fractional ratio degradation that fails the gate "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--label", default="", help="free-form annotation stored in the entry"
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="compare against the baseline but do not write the trajectory",
    )
    parser.add_argument(
        "--results-db",
        nargs="?",
        const=None,  # resolved to repro.results.DEFAULT_DB below
        default=False,
        help="read the trajectory from (and record into) a repro.results "
        "index; the JSON file is the fallback when the index has no "
        "bench entries yet (bare flag uses the default index path)",
    )
    args = parser.parse_args(argv)
    results_db = None
    if args.results_db is not False:
        from repro import results as repro_results

        results_db = args.results_db or repro_results.DEFAULT_DB

    # The JSON file stays the durable record either way; the index is a
    # queryable mirror of it, preferred for the baseline when populated.
    traj = bench_record.load_trajectory(args.output)
    gate_traj = traj
    if results_db is not None:
        db_traj = repro_results.trajectory_from_db(results_db)
        if db_traj is not None:
            gate_traj = db_traj
            print(f"baseline read from result index {results_db} "
                  f"({len(db_traj['entries'])} entries)")
        else:
            print(f"result index {results_db} has no bench entries; "
                  f"falling back to {args.output}")
    baseline = bench_record.baseline_entry(gate_traj)

    print("collecting deterministic benchmark metrics ...")
    metrics = bench_record.collect_metrics()

    width = max(len(k) for k in metrics)
    for name in sorted(metrics):
        marker = "  [tracked]" if name in bench_record.TRACKED_RATIOS else ""
        print(f"  {name:<{width}}  {metrics[name]:12.4f}{marker}")

    violations = bench_record.check_constraints(metrics)
    if violations:
        print(
            f"\nGATE FAILED: {len(violations)} absolute guard "
            f"constraint(s) violated:"
        )
        for violation in violations:
            print(f"  - {violation}")
        print("entry NOT recorded.")
        return 2

    regressions = bench_record.compare_to_baseline(
        metrics, baseline, threshold=args.threshold
    )
    if regressions:
        print(
            f"\nGATE FAILED: {len(regressions)} tracked ratio(s) degraded "
            f">= {args.threshold:.0%} vs baseline "
            f"({baseline['timestamp']}):"
        )
        for reg in regressions:
            print(f"  - {reg}")
        print("entry NOT recorded.")
        return 2

    entry = bench_record.make_entry(
        metrics,
        timestamp=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        label=args.label,
        threshold=args.threshold,
    )
    problems = bench_record.validate_entry(entry)
    if problems:
        print("internal error: produced an invalid entry:", problems)
        return 1

    if baseline is None:
        print("\nno baseline entry yet; this run becomes the baseline.")
    else:
        print(f"\nGATE PASSED vs baseline {baseline['timestamp']}.")

    if args.dry_run:
        print("dry run: trajectory not written.")
        return 0

    traj["entries"].append(entry)
    bench_record.save_trajectory(args.output, traj)
    print(
        f"recorded entry #{len(traj['entries'])} in {args.output}"
    )
    if results_db is not None:
        with repro_results.ResultsDB(results_db) as db:
            repro_results.Ingestor(db).ingest_bench_entry(
                entry, path=args.output
            )
        print(f"entry ingested into result index {results_db}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
