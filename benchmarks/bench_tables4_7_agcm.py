"""Tables 4-7 — AGCM timings (s/simulated day) with old vs new filtering.

Paper numbers (Dynamics speedups) for orientation:

===========  =======  =======  =======  =======
mesh         T4 old   T5 new   T6 old   T7 new
             Paragon  Paragon  T3D      T3D
===========  =======  =======  =======  =======
4 x 4        10.3     12.6     11.3     12.6
8 x 8        23.8     38.9     26.3     38.9
8 x 30       46.8     92.6     51.9     92.3
===========  =======  =======  =======  =======

Shape claims asserted per table pair: the new filtering scales better at
every mesh, roughly doubles the 240-node Dynamics speedup, and the T3D
runs ~2-3x faster than the Paragon throughout.
"""

import pytest
from conftest import run_once

from repro.reporting.experiments import (
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)

_RESULTS = {}


def _get(name, runner, benchmark, archive):
    if name not in _RESULTS:
        _RESULTS[name] = run_once(benchmark, runner)
    result = _RESULTS[name]
    print("\n" + archive(result))
    return result


def test_table4_old_filtering_paragon(benchmark, archive):
    r = _get("t4", run_table4, benchmark, archive)
    data = r.data
    # Speedups grow with node count but sub-linearly (paper: 46.8 at 240).
    assert data[(4, 4)]["speedup"] > 5
    assert data[(8, 8)]["speedup"] > data[(4, 4)]["speedup"]
    assert data[(8, 30)]["speedup"] > data[(8, 8)]["speedup"]
    assert data[(8, 30)]["speedup"] < 240 * 0.5  # poor efficiency


def test_table5_new_filtering_paragon(benchmark, archive):
    r4 = _get("t4", run_table4, benchmark, archive)
    r5 = _get("t5", run_table5, benchmark, archive)
    for dims in ((4, 4), (8, 8), (8, 30)):
        assert r5.data[dims]["dynamics"] < r4.data[dims]["dynamics"]
        assert r5.data[dims]["total"] < r4.data[dims]["total"]
    # The 240-node Dynamics speedup improves substantially (paper ~2x).
    assert r5.data[(8, 30)]["speedup"] > 1.2 * r4.data[(8, 30)]["speedup"]
    # Overall reduction at 240 nodes (paper: 216 -> 119 s/day, ~45%).
    reduction = 1 - r5.data[(8, 30)]["total"] / r4.data[(8, 30)]["total"]
    assert reduction > 0.20


def test_table6_old_filtering_t3d(benchmark, archive):
    r4 = _get("t4", run_table4, benchmark, archive)
    r6 = _get("t6", run_table6, benchmark, archive)
    # T3D ~2.5x faster than Paragon at equal mesh (paper's observation).
    for dims in ((1, 1), (4, 4), (8, 8), (8, 30)):
        ratio = r4.data[dims]["total"] / r6.data[dims]["total"]
        assert 1.7 < ratio < 3.5, (dims, ratio)


def test_table7_new_filtering_t3d(benchmark, archive):
    r6 = _get("t6", run_table6, benchmark, archive)
    r7 = _get("t7", run_table7, benchmark, archive)
    for dims in ((4, 4), (8, 8), (8, 30)):
        assert r7.data[dims]["dynamics"] < r6.data[dims]["dynamics"]
    assert r7.data[(8, 30)]["speedup"] > r6.data[(8, 30)]["speedup"]
