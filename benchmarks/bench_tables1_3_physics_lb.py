"""Tables 1-3 — physics load-balancing simulation on the T3D model.

Paper (2 x 2.5 x 9 resolution):

=========  ======  ==============  ===============
node mesh  before  after 1st pass  after 2nd pass
=========  ======  ==============  ===============
8 x 8      37%     9%              6%
9 x 14     35%     12%             5%
14 x 18    48%     12.5%           6%
=========  ======  ==============  ===============

Shape claims asserted: initial imbalance in the 30-55% band, monotone
non-increasing over passes, single digits after the second pass.
"""

from conftest import run_once

from repro.reporting.experiments import run_tables1_3


def test_tables1_3_physics_load_balancing(benchmark, archive):
    result = run_once(benchmark, run_tables1_3)
    print("\n" + archive(result))

    for nodes, series in result.data.items():
        before, first, second = (s["imbalance"] for s in series)
        # Paper band: 35-48% before balancing.
        assert 0.30 < before < 0.60, nodes
        # Monotone improvement, large first-step reduction.
        assert first < before / 2
        assert second <= first + 1e-12
        # Single digits after two passes (paper: 5-6%).
        assert second < 0.10
        # Max/min ordering is coherent.
        for s in series:
            assert s["max"] >= s["min"] > 0
