"""Section 3.4 — the pointwise vector-multiply kernel (eq. 4).

The paper proposes an optimised library routine for ``a o b`` (tiling a
short vector across a long one) as a portable route to single-node
performance.  numpy's broadcasting is that routine here; the benchmark
measures the real speedup over the scalar-loop form and the gain from the
in-place variant.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.perf.kernels import (
    pointwise_multiply_reshaped,
    pointwise_multiply_tiled,
)
from repro.reporting.experiments import run_pointwise


def test_pointwise_study(benchmark, archive):
    result = run_once(benchmark, run_pointwise)
    print("\n" + archive(result))
    times = result.data
    # The optimised kernel is orders of magnitude faster than the scalar
    # loop (the paper hoped for exactly this kind of library win).
    assert times["reshaped"] < 0.05 * times["naive"]
    assert times["tiled"] <= times["reshaped"] * 1.5


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(1)
    a = rng.standard_normal(1_800_000)
    b = rng.standard_normal(9)
    out = np.empty_like(a)
    return a, b, out


def test_bench_pointwise_reshaped(benchmark, vectors):
    a, b, _ = vectors
    benchmark(pointwise_multiply_reshaped, a, b)


def test_bench_pointwise_tiled_inplace(benchmark, vectors):
    a, b, out = vectors
    benchmark(pointwise_multiply_tiled, a, b, out)
