"""Ablation — scheme-3 stopping policy: passes vs achieved balance.

The paper: "One advantage of scheme 3 is its flexibility in making a
compromise between the cost and accuracy of the final load-balance" —
pairwise exchanges only fire above a tolerance, and iteration stops once
the imbalance is acceptable.  This bench maps that trade-off on a
realistic load distribution.
"""

import numpy as np
from conftest import run_once

from repro.core.physics_lb import PairwiseExchangeBalancer, imbalance
from repro.util.tables import Table


def make_loads(nranks: int = 64, seed: int = 9) -> np.ndarray:
    """A day/night + convection-like load distribution (paper-band ~45%)."""
    rng = np.random.default_rng(seed)
    base = np.ones(nranks)
    day = np.zeros(nranks)
    day[: nranks // 2] = 0.55  # daylight hemisphere
    conv = 0.7 * rng.random(nranks) ** 3  # patchy convection
    return base + day + conv


def sweep():
    loads = make_loads()
    table = Table(
        f"Ablation — pairwise-exchange policy on {loads.size} ranks "
        f"(initial imbalance {imbalance(loads) * 100:.0f}%)",
        ["max passes", "tolerance", "passes used", "final imbalance",
         "units moved"],
    )
    data = {}
    for max_passes in (1, 2, 3, 5):
        balancer = PairwiseExchangeBalancer(max_passes=max_passes)
        res = balancer.balance(loads)
        table.add_row(
            max_passes, "-", res.passes,
            f"{res.imbalance_after * 100:.1f}%", f"{res.total_moved:.2f}",
        )
        data[("passes", max_passes)] = res
    for tol in (0.20, 0.10, 0.02):
        balancer = PairwiseExchangeBalancer(
            max_passes=10, imbalance_tolerance=tol
        )
        res = balancer.balance(loads)
        table.add_row(
            10, f"{tol:.2f}", res.passes,
            f"{res.imbalance_after * 100:.1f}%", f"{res.total_moved:.2f}",
        )
        data[("tol", tol)] = res
    return table, data


def test_lb_policy_tradeoff(benchmark, results_dir):
    table, data = run_once(benchmark, sweep)
    (results_dir / "ablation_lb_policy.txt").write_text(table.render() + "\n")
    print("\n" + table.render())

    # More passes monotonically improve balance at monotonically higher
    # data movement (the paper's compromise knob).
    imb = [data[("passes", p)].imbalance_after for p in (1, 2, 3, 5)]
    moved = [data[("passes", p)].total_moved for p in (1, 2, 3, 5)]
    assert all(b <= a + 1e-12 for a, b in zip(imb, imb[1:]))
    assert all(b >= a - 1e-12 for a, b in zip(moved, moved[1:]))

    # Two passes already reach the paper's single-digit band.
    assert data[("passes", 2)].imbalance_after < 0.10

    # The tolerance stop trades residual imbalance for fewer passes.
    assert data[("tol", 0.20)].passes <= data[("tol", 0.02)].passes
    assert (
        data[("tol", 0.20)].imbalance_after
        >= data[("tol", 0.02)].imbalance_after
    )
