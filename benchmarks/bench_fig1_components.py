"""Figure 1 — execution-time fractions of the major AGCM components.

Paper: with the original filtering, Dynamics is 72% of the main body on
16 nodes and 86% on 240; the spectral filter is 36% of Dynamics on 16
nodes and 49% on 240 — i.e. both fractions *grow* with node count, which
is the scalability indictment the whole paper acts on.
"""

from conftest import run_once

from repro.reporting.experiments import run_fig1


def test_fig1_component_fractions(benchmark, archive):
    result = run_once(benchmark, run_fig1)
    print("\n" + archive(result))

    small = result.data[16]
    large = result.data[240]

    # Dynamics dominates the main body and its share grows with nodes.
    assert small["dynamics_fraction"] > 0.5
    assert large["dynamics_fraction"] > small["dynamics_fraction"]

    # Filtering is a large, *growing* share of Dynamics (paper: 36% -> 49%).
    assert small["filtering_fraction"] > 0.2
    assert large["filtering_fraction"] > small["filtering_fraction"]
    assert large["filtering_fraction"] > 0.35
