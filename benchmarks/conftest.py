"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one (or one family) of the paper's
tables/figures, asserts its shape claims, and archives the rendered
paper-style table under ``benchmarks/results/`` so the output survives
pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Save an ExperimentResult's rendering to results/<ident>.txt."""

    def _save(result) -> str:
        text = result.render()
        (results_dir / f"{result.ident}.txt").write_text(text + "\n")
        return text

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
