"""Section 3.4 — single-node optimisation of the advection routine.

Paper: "we were able to reduce its execution time on a single Cray T3D
node by about 35%" via eliminating redundant calculations, BLAS calls and
loop unrolling.  Here the same restructuring sequence is applied to the
Python advection kernel and measured for real (pytest-benchmark timings
of the two interesting end states, plus the staged comparison).
"""

import numpy as np
import pytest
from conftest import run_once

from repro.perf.advection_opt import (
    ALL_VARIANTS,
    AdvectionWorkspace,
    advection_optimized,
)
from repro.reporting.experiments import run_advection_opt


def test_advection_restructuring_study(benchmark, archive):
    result = run_once(benchmark, run_advection_opt)
    print("\n" + archive(result))
    times = result.data

    # Loop restructuring: >= 15% off the naive scalar version
    # (paper: ~35%; Python loop overheads damp the hoisting gain).
    assert times["hoisted"] < 0.85 * times["naive"]
    # Vectorisation is transformative.
    assert times["vectorized"] < 0.1 * times["naive"]
    # In-place restructuring gives a further measurable cut.
    assert times["optimized"] < times["vectorized"]


@pytest.fixture(scope="module")
def advection_inputs():
    rng = np.random.default_rng(0)
    shape = (45, 72, 9)
    return (
        rng.standard_normal(shape),
        rng.standard_normal(shape),
        rng.standard_normal(shape),
        1e5 * (1 + rng.random(shape[0])),
        1.1e5,
    )


def test_bench_advection_vectorized(benchmark, advection_inputs):
    f, u, v, dx, dy = advection_inputs
    benchmark(ALL_VARIANTS["vectorized"], f, u, v, dx, dy)


def test_bench_advection_optimized(benchmark, advection_inputs):
    f, u, v, dx, dy = advection_inputs
    ws = AdvectionWorkspace(f.shape)
    benchmark(advection_optimized, f, u, v, dx, dy, ws)
