"""Real wall-clock comparison of the filtering kernels at paper size.

Besides the virtual-machine tables (8-11), this measures the *actual*
numpy cost of filtering a 144-longitude, 9-layer field with the
convolution form (eq. 2) versus the FFT form (eq. 1) — the algorithmic
O(N^2) vs O(N log N) gap, independent of any machine model.
"""

import numpy as np
import pytest

from repro.core.convolution import convolution_filter_rows
from repro.core.fft import fft_filter_rows
from repro.core.spectral import strong_filter
from repro.grid.sphere import SphericalGrid


@pytest.fixture(scope="module")
def paper_field():
    grid = SphericalGrid(90, 144)
    rng = np.random.default_rng(2)
    field = rng.standard_normal((90, 144, 9))
    return grid, field


def test_bench_convolution_filter(benchmark, paper_field):
    grid, field = paper_field
    pfilter = strong_filter(grid)
    benchmark(convolution_filter_rows, field, pfilter)


def test_bench_fft_filter(benchmark, paper_field):
    grid, field = paper_field
    pfilter = strong_filter(grid)
    benchmark(fft_filter_rows, field, pfilter)


def test_fft_actually_faster(paper_field):
    """The algorithmic win is real, not just modelled."""
    import timeit

    grid, field = paper_field
    pfilter = strong_filter(grid)
    t_conv = timeit.timeit(
        lambda: convolution_filter_rows(field, pfilter), number=3
    )
    t_fft = timeit.timeit(
        lambda: fft_filter_rows(field, pfilter), number=3
    )
    assert t_fft < t_conv
