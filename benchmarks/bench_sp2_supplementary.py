"""Supplementary — the IBM SP-2 timings the paper took but did not show.

Paper Section 4: "Some timing on IBM SP-2 were also performed, but are
not shown here ... qualitatively similar to those obtained on the Cray
T3D and the IBM SP-2."  This bench produces those numbers on the SP-2
machine model and asserts the qualitative similarity: the optimised
filtering wins at every mesh, by a factor in the same band as on the
other two machines.
"""

from conftest import run_once

from repro.reporting.experiments import run_sp2_supplementary


def test_sp2_qualitatively_similar(benchmark, archive):
    result = run_once(benchmark, run_sp2_supplementary)
    print("\n" + archive(result))

    for dims, per in result.data.items():
        old, new = per["old"], per["new"]
        # Same ordering as Paragon/T3D: the new filter wins everywhere.
        assert new.dynamics < old.dynamics, dims
        assert new.total < old.total, dims
        # And by a comparable factor (paper: "qualitatively similar").
        ratio = old.dynamics / new.dynamics
        assert 1.05 < ratio < 3.0, (dims, ratio)
        # Filtering is the component that moved.
        assert new.filtering < old.filtering
