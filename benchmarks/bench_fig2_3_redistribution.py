"""Figures 2-3 — row redistribution and transpose for balanced filtering.

Paper: given M x N processors and L variables with R_j filtered rows,
redistribute so each processor holds ~ceil(sum R_j / n) rows (eq. 3),
then transpose within processor rows so whole lines can be FFT'd locally.
"""

from conftest import run_once

from repro.reporting.experiments import run_fig2_3


def test_fig2_3_row_redistribution(benchmark, archive):
    result = run_once(benchmark, run_fig2_3, mesh_dims=(4, 8))
    print("\n" + archive(result))

    nat = result.data["natural_lines"]
    bal = result.data["balanced_lines"]

    # eq. (3): balanced within one unit everywhere; nobody idle.
    assert bal.max() - bal.min() <= 1
    assert (bal == 0).sum() == 0
    # The natural distribution leaves low-latitude ranks idle.
    assert (nat == 0).sum() > 0
    assert nat.max() > bal.max()
    # Conservation: redistribution moves rows, never creates them.
    assert nat.sum() == bal.sum() == result.data["total_units"]


def test_fig2_paper_production_mesh(benchmark, archive):
    """Same invariants on the paper's 8 x 30 production mesh."""
    result = run_once(benchmark, run_fig2_3, mesh_dims=(8, 30))
    archive(result)
    bal = result.data["balanced_lines"]
    assert bal.max() - bal.min() <= 1
    assert result.data["rows_moved"] > 0
