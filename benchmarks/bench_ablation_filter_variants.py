"""Ablation — the four filter parallelisations vs the paper's complexity table.

Section 3.1-3.2 compares the variants by message count and transferred
volume (N = points per line, P = processors per row):

=====================  ============  ======================
variant                messages      data volume
=====================  ============  ======================
convolution, ring      ~P per rank   O(N P) per row
convolution, tree      O(2 P)        O(N P + N log P)
transpose + local FFT  O(P^2)        O(N) per line
=====================  ============  ======================

This bench measures the *emergent* counts from the simulator across row
widths and asserts the scaling relations the paper's table claims.
"""

import numpy as np
from conftest import run_once

from repro.core import make_filter_plan, prepare_filter_backend
from repro.dynamics.state import initial_fields_block
from repro.grid import Decomposition2D, SphericalGrid
from repro.parallel import PARAGON, ProcessorMesh, Simulator
from repro.util.tables import Table

NLAYERS = 6
GRID = SphericalGrid(24, 48)


def _run(backend_name, ncols):
    mesh = ProcessorMesh(2, ncols)
    decomp = Decomposition2D(GRID.nlat, GRID.nlon, mesh)
    plan = make_filter_plan(GRID)
    backend = prepare_filter_backend(backend_name, plan, decomp)

    def program(ctx):
        sub = decomp.subdomain(ctx.rank)
        fields = initial_fields_block(
            GRID.lat_rad[sub.lat_slice], GRID.lon_rad[sub.lon_slice], NLAYERS
        )
        yield from backend.apply(ctx, fields)

    res = Simulator(mesh.size, PARAGON).run(program)
    return res.trace.total_messages(), res.trace.total_bytes(), res.elapsed


def sweep():
    table = Table(
        "Ablation — filter variant communication vs row width (2 x N mesh)",
        ["variant", "N=2", "N=4", "N=8", "metric"],
    )
    data = {}
    widths = (2, 4, 8)
    for name in ("convolution-ring", "convolution-tree", "fft", "fft-lb"):
        msgs, vols = [], []
        for n in widths:
            m, v, _ = _run(name, n)
            msgs.append(m)
            vols.append(v)
        table.add_row(name, msgs[0], msgs[1], msgs[2], "messages")
        table.add_row(name, vols[0] // 1000, vols[1] // 1000,
                      vols[2] // 1000, "volume kB")
        data[name] = {"messages": msgs, "volumes": vols, "widths": widths}
    return table, data


def test_filter_variant_scaling(benchmark, results_dir):
    table, data = run_once(benchmark, sweep)
    (results_dir / "ablation_filter_variants.txt").write_text(
        table.render() + "\n"
    )
    print("\n" + table.render())

    ring = data["convolution-ring"]
    tree = data["convolution-tree"]
    fft = data["fft"]

    # Ring messages grow ~quadratically with row width (P ranks x P-1
    # rounds per active row); tree messages grow linearly.
    ring_growth = ring["messages"][2] / ring["messages"][0]
    tree_growth = tree["messages"][2] / tree["messages"][0]
    assert ring_growth > 1.8 * tree_growth

    # Ring volume grows with P (every segment travels the whole ring);
    # the transpose's volume is essentially width-independent.
    assert ring["volumes"][2] > 2.5 * ring["volumes"][0]
    assert fft["volumes"][2] < 2.0 * fft["volumes"][0]

    # Tree moves more data than the transpose (O(NP) vs O(N)).
    assert tree["volumes"][2] > fft["volumes"][2]
