"""Ablation — machine-parameter sensitivity of the paper's conclusions.

Sweeps latency, bandwidth and node speed around the Paragon preset with
the analytic cost model and checks which conclusions are robust:

* the FFT+LB filter wins across the realistic parameter ranges;
* the relative value of load balancing grows as nodes get faster
  (communication-bound regimes reward fewer idle ranks less, but the
  paper-era compute-bound regime rewards them a lot).
"""

from conftest import run_once

from repro.model import AGCMConfig
from repro.model.analytic import estimate_costs
from repro.parallel import PARAGON, ProcessorMesh
from repro.util.tables import Table

MESH = ProcessorMesh(8, 8)
CFG = AGCMConfig.paper_2x2_5()


def sweep():
    table = Table(
        "Ablation — filtering s/day over machine-parameter sweeps "
        "(8 x 8 mesh, Paragon base)",
        ["parameter", "x0.1", "x1", "x10", "winner everywhere?"],
    )
    data = {}
    for param in ("latency", "bandwidth", "flop_rate"):
        winners = []
        row = []
        for factor in (0.1, 1.0, 10.0):
            overrides = {param: getattr(PARAGON, param) * factor}
            if param == "latency":
                overrides["overhead"] = min(
                    PARAGON.overhead * factor, overrides["latency"]
                )
            machine = PARAGON.with_overrides(**overrides)
            costs = {
                b: estimate_costs(
                    CFG.with_(filter_backend=b), MESH, machine
                ).filtering
                for b in ("convolution-ring", "fft", "fft-lb")
            }
            row.append(costs["fft-lb"])
            winners.append(min(costs, key=costs.get))
        table.add_row(
            param, row[0], row[1], row[2],
            "fft-lb" if all(w == "fft-lb" for w in winners) else "varies",
        )
        data[param] = winners
    return table, data


def test_machine_sensitivity(benchmark, results_dir):
    table, data = run_once(benchmark, sweep)
    (results_dir / "ablation_machine_sweep.txt").write_text(
        table.render() + "\n"
    )
    print("\n" + table.render())

    # The optimised filter wins across two orders of magnitude in every
    # single machine parameter — the paper's conclusion is not an
    # artefact of one calibration point.
    for param, winners in data.items():
        assert all(w == "fft-lb" for w in winners), (param, winners)
