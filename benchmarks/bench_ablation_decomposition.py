"""Ablation — the Section-2 design choice: 2-D vs 1-D decompositions.

The paper partitions the horizontal plane in both directions.  At a fixed
node count the alternatives are latitude-only strips (no east-west
messages, but long thin blocks and the whole filter burden concentrated
per strip) and longitude-only strips (every rank owns polar rows, so the
unbalanced filter hits everyone, and halo edges are long).  This bench
compares the three at 64 nodes on the production grid.
"""

from conftest import run_once

from repro.grid import Decomposition2D
from repro.model import AGCMConfig, ComponentBreakdown
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import PARAGON, ProcessorMesh, Simulator
from repro.util.tables import Table

NSTEPS = 8
SHAPES = ((64, 1), (8, 8), (2, 32), (1, 64))


def sweep():
    cfg = AGCMConfig.paper_2x2_5()
    table = Table(
        "Ablation — decomposition shape at 64 nodes (Paragon, s/day)",
        ["mesh", "dynamics", "filtering", "halo", "total", "halo kB/step"],
    )
    data = {}
    for dims in SHAPES:
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg, decomp, NSTEPS
        )
        br = ComponentBreakdown.from_result(res, NSTEPS, cfg)
        halo_bytes = res.trace.total_bytes() / NSTEPS / 1e3
        table.add_row(
            mesh.describe(), br.dynamics, br.filtering, br.halo,
            br.total, f"{halo_bytes:.0f}",
        )
        data[dims] = {"breakdown": br, "halo_kb": halo_bytes}
    return table, data


def test_decomposition_shapes(benchmark, results_dir):
    table, data = run_once(benchmark, sweep)
    (results_dir / "ablation_decomposition.txt").write_text(
        table.render() + "\n"
    )
    print("\n" + table.render())

    square = data[(8, 8)]["breakdown"]
    lat_strips = data[(64, 1)]["breakdown"]
    lon_strips = data[(1, 64)]["breakdown"]

    # The paper's 2-D choice is at least competitive with both 1-D
    # extremes, and clearly beats longitude-only strips (which hand every
    # rank a share of the polar filter rows *and* maximal E-W edges).
    assert square.total <= 1.1 * min(lat_strips.total, lon_strips.total)
    assert square.total < lon_strips.total

    # Latitude strips avoid E-W traffic but concentrate each line's
    # filtering on a single rank; the balanced filter still keeps them
    # usable — the decisive argument in the paper is the *column physics*
    # coupling, which our 2-D model inherits by construction.
    assert lat_strips.filtering >= square.filtering * 0.5
