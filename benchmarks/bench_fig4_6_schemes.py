"""Figures 4-6 — the three physics load-balancing schemes.

Paper worked example: loads {65, 24, 38, 15} on four processors.
Scheme 3 (sorted pairwise exchange) reaches {40,31,31,40} after one pass
and {36,35,35,36} after two — reproduced here exactly.
"""

import numpy as np
from conftest import run_once

from repro.reporting.experiments import run_fig4_6


def test_fig4_6_schemes(benchmark, archive):
    result = run_once(benchmark, run_fig4_6)
    print("\n" + archive(result))

    history = result.data["scheme3_history"]
    np.testing.assert_allclose(history[0], [65, 24, 38, 15])
    np.testing.assert_allclose(history[1], [40, 31, 31, 40])
    np.testing.assert_allclose(history[2], [36, 35, 35, 36])

    s1, s2, s3 = (result.data[k] for k in ("scheme1", "scheme2", "scheme3"))
    # Scheme 1: perfect balance at O(N^2) messages.
    assert s1.imbalance_after == 0.0 and s1.message_count == 12
    # Scheme 2: perfect balance at O(N) messages.
    assert s2.imbalance_after < 1e-12 and s2.message_count <= 3
    # Scheme 3: near-balance at the fewest bulk exchanges per pass.
    assert s3.imbalance_after < 0.02
