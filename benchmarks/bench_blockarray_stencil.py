"""Section 3.4 — block-array vs separate-array cache experiments.

Paper: for a 7-point Laplace stencil over several 32^3 fields, the block
array gave a 5x speedup on the Paragon and 2.6x on the T3D; inside the
real (mixed-loop) advection routine the block array showed *no* advantage
and sometimes underperformed.
"""

from conftest import run_once

from repro.reporting.experiments import run_blockarray


def test_blockarray_layout_experiments(benchmark, archive):
    result = run_once(benchmark, run_blockarray)
    print("\n" + archive(result))

    lap_paragon = result.data[("laplace", "paragon")]
    lap_t3d = result.data[("laplace", "t3d")]
    adv_paragon = result.data[("advection", "paragon")]
    adv_t3d = result.data[("advection", "t3d")]

    # Isolated Laplace: block wins on both machines, by more on the
    # Paragon (paper: 5x vs 2.6x; measured here ~4.2x vs ~1.5x).
    assert lap_paragon.block_speedup > 2.5
    assert lap_t3d.block_speedup > 1.2
    assert lap_paragon.block_speedup > lap_t3d.block_speedup

    # Mixed advection loops: "did not show any advantage ... for some
    # sizes underperformed".
    assert adv_paragon.block_speedup < 1.0
    assert adv_t3d.block_speedup < 1.2

    # The mechanism: separate arrays thrash on the stencil.
    assert lap_paragon.separate_misses > 3 * lap_paragon.block_misses
