"""Ablation — the Section-3.2 decision: distributed 1-D FFT vs transpose.

The paper: "the approach using the parallel one dimensional FFT requires
[fewer] messages but exchanges larger amounts of data than the second
approach.  We chose to implement the second approach [transpose + local
FFT] ... for the relative simplicity of implementing the data transpose
and the possibility of using highly efficient (sometimes vendor provided)
FFT library codes on whole latitudinal data lines."

This bench runs both for real on a power-of-two grid and checks the
claimed trade-off, plus the vector-length argument: the transpose
variant's FFT compute happens at full line length, the distributed
variant's at the short local block length (which the vector-startup
machine model penalises).
"""

from conftest import run_once

from repro.core import make_filter_plan, prepare_filter_backend
from repro.dynamics.state import initial_fields_block
from repro.grid import Decomposition2D, SphericalGrid
from repro.parallel import PARAGON, ProcessorMesh, Simulator
from repro.util.tables import Table

GRID = SphericalGrid(nlat=32, nlon=128)  # power-of-two lines
NLAYERS = 9


def _run(backend_name, row_width):
    mesh = ProcessorMesh(4, row_width)
    decomp = Decomposition2D(GRID.nlat, GRID.nlon, mesh)
    plan = make_filter_plan(GRID)
    backend = prepare_filter_backend(backend_name, plan, decomp)

    def program(ctx):
        sub = decomp.subdomain(ctx.rank)
        fields = initial_fields_block(
            GRID.lat_rad[sub.lat_slice], GRID.lon_rad[sub.lon_slice], NLAYERS
        )
        yield from ctx.barrier()
        with ctx.region("filter"):
            yield from backend.apply(ctx, fields)

    res = Simulator(mesh.size, PARAGON).run(program)
    tr = res.trace
    return {
        "time": tr.phase_max("filter"),
        "messages": tr.total_messages(),
        "bytes": tr.total_bytes(),
    }


def sweep():
    table = Table(
        "Ablation — distributed 1-D FFT vs transpose + local FFT "
        "(4 x W mesh, 128-point lines, Paragon)",
        ["row width", "variant", "time [ms]", "messages", "volume [kB]"],
    )
    data = {}
    for width in (4, 8, 16):
        for name in ("fft", "fft-distributed"):
            r = _run(name, width)
            table.add_row(
                width, name, f"{r['time'] * 1e3:.2f}", r["messages"],
                f"{r['bytes'] / 1e3:.0f}",
            )
            data[(name, width)] = r
    return table, data


def test_distributed_fft_tradeoff(benchmark, results_dir):
    table, data = run_once(benchmark, sweep)
    (results_dir / "ablation_distributed_fft.txt").write_text(
        table.render() + "\n"
    )
    print("\n" + table.render())

    for width in (4, 8, 16):
        dist = data[("fft-distributed", width)]
        tr = data[("fft", width)]
        # The paper's complexity claim: fewer messages, more data.
        assert dist["messages"] < tr["messages"], width
        assert dist["bytes"] > tr["bytes"], width
    # And the paper's conclusion holds on its machine model: the
    # transpose + whole-line FFT is at least competitive at scale
    # (short-vector butterflies hurt the distributed variant).
    assert (
        data[("fft", 16)]["time"] < 1.5 * data[("fft-distributed", 16)]["time"]
    )
