"""Tables 8-11 — total filtering times: convolution vs FFT vs FFT + LB.

Paper (s/simulated day):

* Table 8 (Paragon, 9-layer):  conv 309.5..90.0, FFT 111.4..37.5,
  FFT+LB 87.7..18.5 over meshes 4x4 .. 8x30;
* Table 9 (T3D, 9-layer): same ordering, ~2.5x faster;
* Tables 10-11: the 15-layer model, same ordering, better parallel
  efficiency (39% vs 32% at 240-vs-16 nodes) because the local work per
  communication grows with layer count.

Shape claims asserted: strict column ordering conv > FFT > FFT+LB at
every mesh, FFT+LB >= ~3x faster than convolution at 240 nodes, and the
15-layer filtering scaling at least matching the 9-layer.
"""

import pytest
from conftest import run_once

from repro.reporting.experiments import (
    run_table8,
    run_table9,
    run_table10,
    run_table11,
)

_RESULTS = {}


def _get(name, runner, benchmark, archive):
    if name not in _RESULTS:
        _RESULTS[name] = run_once(benchmark, runner)
    result = _RESULTS[name]
    print("\n" + archive(result))
    return result


def _assert_column_ordering(data):
    for dims, row in data.items():
        assert row["convolution-ring"] > row["fft"] > row["fft-lb"], dims


def test_table8_filtering_paragon_9layer(benchmark, archive):
    r = _get("t8", run_table8, benchmark, archive)
    _assert_column_ordering(r.data)
    # FFT+LB beats convolution by a large factor at 240 nodes (paper ~4.9x).
    ratio = r.data[(8, 30)]["convolution-ring"] / r.data[(8, 30)]["fft-lb"]
    assert ratio > 2.5
    # Load balancing itself helps (paper ~2x at 240 nodes).
    lb_gain = r.data[(8, 30)]["fft"] / r.data[(8, 30)]["fft-lb"]
    assert lb_gain > 1.2


def test_table9_filtering_t3d_9layer(benchmark, archive):
    r8 = _get("t8", run_table8, benchmark, archive)
    r9 = _get("t9", run_table9, benchmark, archive)
    _assert_column_ordering(r9.data)
    for dims in r9.data:
        assert r9.data[dims]["fft-lb"] < r8.data[dims]["fft-lb"]


def test_table10_filtering_paragon_15layer(benchmark, archive):
    r8 = _get("t8", run_table8, benchmark, archive)
    r10 = _get("t10", run_table10, benchmark, archive)
    _assert_column_ordering(r10.data)
    # More layers -> more filtering work at every mesh.
    for dims in r10.data:
        assert r10.data[dims]["fft-lb"] > r8.data[dims]["fft-lb"]
    # The 15-layer model scales at least as well 16 -> 240 nodes
    # (paper: parallel efficiency 39% vs 32%).
    s9 = r8.data[(4, 4)]["fft-lb"] / r8.data[(8, 30)]["fft-lb"]
    s15 = r10.data[(4, 4)]["fft-lb"] / r10.data[(8, 30)]["fft-lb"]
    assert s15 >= 0.9 * s9


def test_table11_filtering_t3d_15layer(benchmark, archive):
    r10 = _get("t10", run_table10, benchmark, archive)
    r11 = _get("t11", run_table11, benchmark, archive)
    _assert_column_ordering(r11.data)
    for dims in r11.data:
        ratio = r10.data[dims]["fft-lb"] / r11.data[dims]["fft-lb"]
        assert 1.5 < ratio < 4.0, dims
