"""Supplementary — the paper's resolution-scaling prediction, tested.

Paper Section 4: "We would expect even better scaling be achieved for the
parallel filtering as well as for the overall AGCM code for higher
horizontal and vertical resolution versions."  The authors could not run
this; the virtual machine can.  Filtering parallel efficiency
(16 -> 240 nodes) is measured for the 9-layer and 15-layer models at the
paper's 2 x 2.5 degree grid and at a doubled 1 x 1.25 degree grid.
"""

import pytest
from conftest import run_once

from repro.core import make_filter_plan, prepare_filter_backend
from repro.dynamics.state import initial_fields_block
from repro.grid import Decomposition2D, SphericalGrid
from repro.parallel import PARAGON, ProcessorMesh, Simulator
from repro.util.tables import Table

SMALL_MESH = (4, 4)    # 16 nodes
LARGE_MESH = (8, 30)   # 240 nodes


def _filter_time(grid, nlayers, dims):
    mesh = ProcessorMesh(*dims)
    decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)
    plan = make_filter_plan(grid)
    backend = prepare_filter_backend("fft-lb", plan, decomp)

    def program(ctx):
        sub = decomp.subdomain(ctx.rank)
        fields = initial_fields_block(
            grid.lat_rad[sub.lat_slice], grid.lon_rad[sub.lon_slice], nlayers
        )
        yield from ctx.barrier()
        with ctx.region("filter"):
            yield from backend.apply(ctx, fields)

    res = Simulator(mesh.size, PARAGON).run(program)
    return res.trace.phase_max("filter")


def sweep():
    table = Table(
        "Supplementary — FFT+LB filtering parallel efficiency, "
        "16 -> 240 nodes (Paragon)",
        ["grid", "layers", "t(16) [ms]", "t(240) [ms]", "speedup",
         "efficiency"],
    )
    data = {}
    cases = [
        (SphericalGrid(90, 144), 9, "2 x 2.5"),
        (SphericalGrid(90, 144), 15, "2 x 2.5"),
        (SphericalGrid(180, 288), 9, "1 x 1.25"),
        (SphericalGrid(180, 288), 15, "1 x 1.25"),
    ]
    for grid, nlayers, label in cases:
        t16 = _filter_time(grid, nlayers, SMALL_MESH)
        t240 = _filter_time(grid, nlayers, LARGE_MESH)
        speedup = t16 / t240
        eff = speedup / (240 / 16)
        table.add_row(
            label, nlayers, f"{t16 * 1e3:.2f}", f"{t240 * 1e3:.2f}",
            f"{speedup:.2f}", f"{100 * eff:.0f}%",
        )
        data[(label, nlayers)] = {"t16": t16, "t240": t240, "eff": eff}
    return table, data


def test_resolution_scaling_prediction(benchmark, results_dir):
    table, data = run_once(benchmark, sweep)
    (results_dir / "resolution_scaling.txt").write_text(table.render() + "\n")
    print("\n" + table.render())

    # The paper's measured 15-vs-9-layer effect at 2 x 2.5 (39% vs 32%
    # parallel efficiency): more layers -> better efficiency.
    assert data[("2 x 2.5", 15)]["eff"] > data[("2 x 2.5", 9)]["eff"]

    # The paper's *prediction*: higher horizontal resolution scales
    # better still, at each layer count.
    for nlayers in (9, 15):
        assert (
            data[("1 x 1.25", nlayers)]["eff"]
            > data[("2 x 2.5", nlayers)]["eff"]
        ), nlayers
