"""Meta-benchmark — real wall-clock cost of the virtual machine itself.

Users who extend this package care how much *host* time a virtual rank
costs.  These pytest-benchmark timings measure the scheduler's op
throughput (compute ops, point-to-point messages, collectives) and a
full parallel-AGCM step at the paper's production 240-rank size.
"""

import numpy as np
import pytest

from repro.grid import Decomposition2D
from repro.model import AGCMConfig
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import GENERIC, PARAGON, ProcessorMesh, Simulator


def test_bench_compute_ops(benchmark):
    """Throughput of bare Compute ops (scheduler bookkeeping floor)."""

    def program(ctx):
        for _ in range(200):
            yield from ctx.compute(seconds=1e-6)

    benchmark(lambda: Simulator(8, GENERIC).run(program))


def test_bench_point_to_point(benchmark):
    """Neighbour sendrecv throughput with real array payloads."""
    payload_template = np.zeros(256)

    def program(ctx):
        buf = payload_template + ctx.rank
        for step in range(50):
            buf = yield from ctx.sendrecv(
                dest=(ctx.rank + 1) % ctx.size,
                payload=buf,
                source=(ctx.rank - 1) % ctx.size,
                tag=step,
            )

    benchmark(lambda: Simulator(8, GENERIC).run(program))


def test_bench_allreduce(benchmark):
    """Tree allreduce throughput (the LB and CG hot collective)."""

    def program(ctx):
        total = 0.0
        for _ in range(25):
            total = yield from ctx.allreduce(float(ctx.rank))
        return total

    benchmark(lambda: Simulator(16, GENERIC).run(program))


@pytest.fixture(scope="module")
def production_setup():
    cfg = AGCMConfig.paper_2x2_5()
    mesh = ProcessorMesh(8, 30)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    return cfg, mesh, decomp


def test_bench_agcm_step_240_ranks(benchmark, production_setup):
    """One full AGCM step on 240 virtual ranks (paper production size)."""
    cfg, mesh, decomp = production_setup
    benchmark.pedantic(
        lambda: Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg, decomp, 1
        ),
        rounds=2, iterations=1,
    )
