#!/usr/bin/env python
"""Fault injection, checkpoint/restart, and straggler mitigation.

Part 1 builds a seeded FaultPlan and shows the determinism contract:
the same plan produces the identical trace, drop for drop.

Part 2 runs the parallel AGCM through message drops and a mid-run rank
failure, restarting from coordinated checkpoints, and verifies the
recovered fields are bit-for-bit equal to a fault-free serial run.

Part 3 makes one rank compute 2x slower and compares the static physics
balancer against measured-time scheme-3 rebalancing.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.faults import (
    FaultPlan,
    FaultSpec,
    LinkFault,
    RankFailure,
    run_straggler_demo,
)
from repro.faults.checkpoint import run_agcm_with_recovery
from repro.grid import Decomposition2D
from repro.model import AGCMConfig
from repro.model.agcm import AGCM
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import ProcessorMesh, Simulator, T3D


def part1_determinism() -> None:
    print("=" * 72)
    print("Part 1: a seeded fault plan is a reproducible test case")
    print("=" * 72)
    plan = FaultPlan.from_spec(
        FaultSpec(stragglers=1, slowdown_factor=2.0, drop_rate=0.02,
                  failures=1),
        nranks=4, seed=42, horizon=2.0,
    )
    print(plan.describe())

    # drop decisions are a pure hash of (seed, src, dst, seq, attempt):
    drops = [plan.plan_delivery(0, 1, seq, 0.0, 1e-4).retransmissions
             for seq in range(2000)]
    again = [plan.plan_delivery(0, 1, seq, 0.0, 1e-4).retransmissions
             for seq in range(2000)]
    assert drops == again
    print(f"\n2000 planned deliveries on link 0->1: "
          f"{sum(1 for d in drops if d)} dropped at least once "
          f"({100 * sum(1 for d in drops if d) / 2000:.1f}% ~ 2% rate), "
          "identical on replay\n")


def part2_checkpoint_recovery() -> None:
    print("=" * 72)
    print("Part 2: rank failure mid-run -> restart from checkpoint")
    print("=" * 72)
    cfg = AGCMConfig.tiny(physics_every=2)
    nsteps = 8
    mesh = ProcessorMesh(2, 2)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)

    # probe the fault-free makespan so the failure lands mid-run
    probe = Simulator(mesh.size, T3D).run(
        agcm_rank_program, cfg, decomp, nsteps, False
    )
    plan = FaultPlan(
        seed=7,
        link_faults=(LinkFault(drop_rate=0.01),),
        failures=(RankFailure(rank=2, at=0.55 * probe.elapsed),),
    )
    with tempfile.TemporaryDirectory() as td:
        out = run_agcm_with_recovery(
            cfg, decomp, nsteps, T3D, faults=plan,
            checkpoint_every=3, checkpoint_path=Path(td) / "agcm.npz",
        )
    print(f"fault-free makespan        : {probe.elapsed:.3f} virtual s")
    print(f"with failure + recovery    : {out.total_elapsed:.3f} virtual s")
    print(f"failures (rank, time)      : {out.failures}")
    print(f"attempts started at steps  : {out.resumed_steps}")
    print(f"checkpoints written        : {out.checkpoints_written}")

    serial = AGCM(cfg)
    serial.initialize()
    serial.run(nsteps)
    worst = 0.0
    for name, want in serial.state.fields().items():
        got = decomp.gather(
            [out.result.returns[r]["fields"][name] for r in range(mesh.size)]
        )
        worst = max(worst, float(np.abs(got - want).max()))
    print(f"max |recovered - serial|   : {worst:g}  (bit-for-bit)\n")
    assert worst == 0.0


def part3_straggler() -> None:
    print("=" * 72)
    print("Part 3: a 2x straggler vs measured-time scheme-3 rebalancing")
    print("=" * 72)
    static = run_straggler_demo(mitigate=False)
    mitigated = run_straggler_demo(mitigate=True)
    print(f"{'balancer':28s} {'imbalance':>10s} {'moved':>6s} {'makespan':>9s}")
    for label, d in (("static decomposition", static),
                     ("measured-time scheme 3", mitigated)):
        print(f"{label:28s} {100 * d['imbalance']:9.1f}% "
              f"{d['columns_moved']:6d} {d['elapsed']:8.2f}s")
    print("\nThe balancer sees the straggler in its measured per-column "
          "rate and ships\ncolumns away from it — no machine model "
          "knowledge, only virtual timings.")


if __name__ == "__main__":
    part1_determinism()
    part2_checkpoint_recovery()
    part3_straggler()
