#!/usr/bin/env python
"""Implicit time differencing: the solver components of the paper's §5.

Three demonstrations of the "fast (parallel) linear system solvers for
implicit time-differencing schemes" the paper lists as reusable GCM
components:

1. **Batched tridiagonal solves** — implicit vertical diffusion of a
   spiky column profile at a time step far above the explicit bound
   (communication-free under the 2-D decomposition).
2. **Parallel Helmholtz CG** — implicit horizontal diffusion solved by
   conjugate gradient on the virtual machine, identical iteration counts
   on every mesh.
3. **Semi-implicit gravity waves** — the Robert scheme steps the
   shallow-water system at 10x the polar CFL bound with *no polar
   filter*, while explicit leapfrog blows up within a few steps: the
   "other road" around the problem the paper's filter optimisation
   attacks.

Run:  python examples/implicit_schemes.py
"""

from __future__ import annotations

import numpy as np

from repro import Decomposition2D, ProcessorMesh, Simulator, SphericalGrid
from repro.dynamics.geometry import LocalGeometry
from repro.dynamics.implicit import (
    implicit_horizontal_diffusion,
    implicit_horizontal_diffusion_parallel,
    implicit_vertical_diffusion,
)
from repro.dynamics.semi_implicit import SemiImplicitShallowWater
from repro.parallel import T3D


def demo_vertical() -> None:
    print("1. Implicit vertical diffusion (batched Thomas solves)")
    field = np.zeros((4, 6, 12))
    field[..., 6] = 10.0  # a spike in every column
    dt, kappa, dz = 3.0e4, 40.0, 500.0
    explicit_limit = dz**2 / (4 * kappa)
    out = implicit_vertical_diffusion(field, dt, kappa, dz)
    print(f"   dt = {dt:.0f}s = {dt / explicit_limit:.0f}x the explicit "
          f"stability limit ({explicit_limit:.0f}s)")
    print(f"   spike 10.0 -> {out[0, 0, 6]:.2f}; column integral drift "
          f"{abs(out[0, 0].sum() - field[0, 0].sum()):.1e}\n")


def demo_helmholtz() -> None:
    print("2. Parallel Helmholtz CG (implicit horizontal diffusion)")
    grid = SphericalGrid(16, 24)
    geom = LocalGeometry.from_grid(grid)
    rng = np.random.default_rng(0)
    field = rng.standard_normal((16, 24, 1))
    dt, kappa = 5e3, 1e5
    serial = implicit_horizontal_diffusion(field, geom, dt, kappa)
    print(f"   serial: converged in {serial.iterations} CG iterations")
    for dims in ((2, 2), (4, 4)):
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)

        def program(ctx):
            sub = decomp.subdomain(ctx.rank)
            g = LocalGeometry.from_grid(grid, sub.lat0, sub.lat1)
            local = decomp.scatter(field)[ctx.rank]
            result = yield from implicit_horizontal_diffusion_parallel(
                ctx, decomp, g, local, dt, kappa
            )
            return result

        res = Simulator(mesh.size, T3D).run(program)
        gathered = decomp.gather([res.returns[r].x for r in range(mesh.size)])
        err = np.abs(gathered - serial.x).max()
        print(
            f"   {mesh.describe()} mesh: {res.returns[0].iterations} "
            f"iterations, {res.trace.total_messages()} messages, "
            f"max |parallel - serial| = {err:.1e}, "
            f"{res.elapsed * 1e3:.1f} virtual ms"
        )
    print()


def demo_semi_implicit() -> None:
    print("3. Semi-implicit gravity waves (no polar filter needed)")
    grid = SphericalGrid(24, 36)
    probe = SemiImplicitShallowWater(grid, dt=1.0)
    cfl = probe.explicit_cfl_dt()
    dt = 10 * cfl
    si = SemiImplicitShallowWater(grid, dt=dt)
    final, energies = si.run(60)
    print(f"   polar explicit CFL bound: {cfl:.0f}s; stepping at {dt:.0f}s")
    print(f"   semi-implicit: 60 steps, energy {energies[0]:.0f} -> "
          f"{energies[-1]:.0f} (finite, bounded); "
          f"~{si.last_cg_iterations} CG iterations/step")

    state = si.initial_state()
    prev, now = {k: v.copy() for k, v in state.items()}, state
    for step in range(60):
        nxt = si.explicit_step(prev, now)
        prev, now = now, nxt
        if not np.isfinite(now["phi"]).all() or np.abs(now["phi"]).max() > 1e8:
            print(f"   explicit leapfrog at the same dt: blows up at step "
                  f"{step + 1}")
            break
    print(
        "\n   This is the trade the 1996 authors faced: keep explicit\n"
        "   stepping + polar filtering (their choice, optimised in the\n"
        "   paper), or pay a global elliptic solve per step.  Both roads\n"
        "   are now implemented and measurable in this package."
    )


def main() -> None:
    demo_vertical()
    demo_helmholtz()
    demo_semi_implicit()


if __name__ == "__main__":
    main()
