#!/usr/bin/env python
"""Physics load balancing: the three schemes and the end-to-end effect.

Part 1 replays the paper's Figures 4-6 worked example ({65,24,38,15} on
four processors) through all three schemes.

Part 2 measures real physics loads from a spun-up model on a processor
mesh (day/night + clouds + convection produce the paper's ~40% imbalance)
and shows the pairwise balancer's convergence — the Tables 1-3 story.

Part 3 runs the full parallel AGCM with scheme-3 balancing switched on
and off and compares the physics critical path.

Run:  python examples/physics_load_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AGCM,
    CyclicShuffleBalancer,
    Decomposition2D,
    PairwiseExchangeBalancer,
    ProcessorMesh,
    Simulator,
    SortedGreedyBalancer,
    imbalance,
    AGCMConfig,
)
from repro.model import agcm_rank_program
from repro.parallel import T3D
from repro.physics.driver import ColumnSet
from repro.physics.workload import column_flops
from repro.util.tables import Table


def part1_schemes() -> None:
    loads = np.array([65.0, 24.0, 38.0, 15.0])
    print(f"Paper worked example: loads {loads.tolist()}, "
          f"imbalance {imbalance(loads) * 100:.0f}%\n")
    table = Table(
        "Schemes 1-3 on the Figure 4-6 example",
        ["scheme", "after", "% imbalance", "messages"],
    )
    for balancer in (
        CyclicShuffleBalancer(),
        SortedGreedyBalancer(),
        PairwiseExchangeBalancer(max_passes=2, integer_amounts=True),
    ):
        res = balancer.balance(loads)
        table.add_row(
            balancer.name,
            "[" + ", ".join(f"{x:g}" for x in res.loads_after) + "]",
            f"{res.imbalance_after * 100:.1f}%",
            res.message_count,
        )
    print(table.render())


def part2_measured_loads() -> None:
    cfg = AGCMConfig.tiny()
    model = AGCM(cfg)
    model.initialize()
    model.run(16)  # spin up clouds and convection
    grid, state = model.grid, model.state

    mesh = ProcessorMesh(3, 4)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    loads = []
    for sub in decomp.subdomains():
        cols = ColumnSet.from_block(
            state.pt[sub.lat_slice, sub.lon_slice],
            state.q[sub.lat_slice, sub.lon_slice],
            grid.lat_rad[sub.lat_slice],
            grid.lon_rad[sub.lon_slice],
        )
        loads.append(column_flops(cols, 0.35, 16).sum() / T3D.flop_rate)
    loads = np.array(loads)

    print(f"\nMeasured physics loads on a {mesh.describe()} mesh "
          f"(virtual T3D seconds):")
    balancer = PairwiseExchangeBalancer(max_passes=3)
    for i, h in enumerate(balancer.balance_history(loads)):
        stage = "before balancing " if i == 0 else f"after pass {i}      "
        print(
            f"  {stage} max {h.max():.3f}s  min {h.min():.3f}s  "
            f"imbalance {imbalance(h) * 100:5.1f}%"
        )


def part3_end_to_end() -> None:
    cfg = AGCMConfig.tiny(physics_every=2)
    mesh = ProcessorMesh(3, 4)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    nsteps = 13

    results = {}
    for lb in (False, True):
        res = Simulator(mesh.size, T3D).run(
            agcm_rank_program, cfg.with_(physics_lb=lb), decomp, nsteps
        )
        results[lb] = res
    off = results[False].trace.phase_max("physics")
    on = results[True].trace.phase_max("physics")
    moved = sum(r["columns_moved"] for r in results[True].returns)
    print(
        f"\nFull AGCM, {nsteps} steps on {mesh.describe()} (virtual T3D):\n"
        f"  physics critical path without balancing: {off * 1e3:.1f} ms\n"
        f"  physics critical path with scheme 3:     {on * 1e3:.1f} ms "
        f"({(1 - on / off) * 100:.0f}% less; {moved} columns moved)\n"
        f"  total time: {results[False].elapsed * 1e3:.1f} -> "
        f"{results[True].elapsed * 1e3:.1f} ms"
    )


def main() -> None:
    part1_schemes()
    part2_measured_loads()
    part3_end_to_end()


if __name__ == "__main__":
    main()
