#!/usr/bin/env python
"""Quickstart: run the serial AGCM for a few simulated hours.

Builds the model at a small test resolution, integrates it, prints
stability/conservation diagnostics, demonstrates the CFL argument for the
polar filter, and writes + re-reads a history file.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import AGCM, AGCMConfig
from repro.dynamics.cfl import CflReport, filter_speedup_factor
from repro.io import HistoryMetadata, HistoryReader, HistoryWriter


def main() -> None:
    cfg = AGCMConfig.tiny()
    print(f"Configuration: {cfg.describe()}")

    # --- why the polar filter exists -----------------------------------
    grid = cfg.make_grid()
    report = CflReport.for_grid(grid, cfg.timestep())
    print(
        f"CFL: unfiltered stable dt = {report.unfiltered_dt:.1f}s, "
        f"filtered (45 deg) dt = {report.filtered_dt_45:.1f}s "
        f"-> filtering buys a {filter_speedup_factor(grid):.0f}x larger step"
    )
    print(
        f"Chosen dt = {cfg.timestep():.0f}s violates the unfiltered CFL on "
        f"{report.violating_rows} polar latitude rows — the filter damps "
        "exactly those."
    )

    # --- integrate -------------------------------------------------------
    model = AGCM(cfg)
    model.initialize()
    nsteps = 2 * cfg.steps_per_day() // 24  # ~2 simulated hours... of steps
    nsteps = max(nsteps, 12)
    print(f"\nIntegrating {nsteps} steps ({nsteps * cfg.timestep() / 3600:.1f} "
          "simulated hours)...")
    mass0 = None
    for i in range(nsteps):
        diag = model.step()
        if mass0 is None:
            mass0 = diag.total_mass
        if i % 4 == 0:
            print(
                f"  step {diag.step:3d}  t={diag.time / 3600:5.1f}h  "
                f"max wind {diag.max_wind:6.2f} m/s  "
                f"mass drift {abs(diag.total_mass - mass0) / mass0:.2e}"
                + ("  [physics]" if diag.physics_ran else "")
            )
    print(f"Stable: {model.is_stable()}")

    # --- history round-trip ---------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "history.npz"
        meta = HistoryMetadata(cfg.nlat, cfg.nlon, cfg.nlayers, model.dt,
                               description="quickstart run")
        writer = HistoryWriter(path, meta)
        writer.append(model.state)
        writer.save()
        reader = HistoryReader(path)
        print(
            f"\nHistory: wrote {len(reader)} snapshot(s); restart point at "
            f"t = {reader.last().time / 3600:.1f}h"
        )
        restarted = AGCM(cfg)
        restarted.initialize(reader.last())
        restarted.run(4)
        print(f"Restarted model stable: {restarted.is_stable()}")


if __name__ == "__main__":
    main()
