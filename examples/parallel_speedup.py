#!/usr/bin/env python
"""Parallel AGCM speedup curves on the virtual Paragon and T3D.

Reproduces the structure of the paper's Tables 4-7 at a reduced grid so
it finishes in seconds: the same model runs over several processor
meshes with the original (convolution) and optimised (load-balanced FFT)
filtering, and the per-day Dynamics/total timings and speedups are
printed side by side.

Run:  python examples/parallel_speedup.py
"""

from __future__ import annotations

from repro import AGCMConfig, Decomposition2D, ProcessorMesh, Simulator, make_machine
from repro.model import ComponentBreakdown, agcm_rank_program
from repro.util.tables import Table

MESHES = [(1, 1), (2, 2), (4, 4), (4, 8)]
NSTEPS = 8


def run_curve(machine_name: str, backend: str) -> Table:
    cfg = AGCMConfig.tiny(filter_backend=backend)
    machine = make_machine(machine_name)
    table = Table(
        f"AGCM s/simulated-day — {backend} filtering on {machine_name} "
        f"({cfg.describe()})",
        ["node mesh", "Dynamics", "speedup", "filtering", "physics", "total"],
    )
    serial_dyn = None
    for dims in MESHES:
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        result = Simulator(mesh.size, machine).run(
            agcm_rank_program, cfg, decomp, NSTEPS
        )
        br = ComponentBreakdown.from_result(result, NSTEPS, cfg)
        if serial_dyn is None:
            serial_dyn = br.dynamics
        table.add_row(
            mesh.describe(),
            br.dynamics,
            f"{serial_dyn / br.dynamics:.1f}",
            br.filtering,
            br.physics,
            br.total,
        )
    return table


def main() -> None:
    for machine in ("paragon", "t3d"):
        for backend in ("convolution-ring", "fft-lb"):
            print(run_curve(machine, backend).render())
            print()
    print(
        "Note the paper's shape: the load-balanced FFT roughly halves the\n"
        "filtering cost and lifts the Dynamics speedup at every mesh, and\n"
        "the T3D model runs ~2.5x faster than the Paragon throughout."
    )


if __name__ == "__main__":
    main()
