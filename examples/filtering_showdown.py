#!/usr/bin/env python
"""The polar-filter showdown: four parallel implementations head-to-head.

Compares the original convolution filter (ring and binary-tree variants)
against the transpose-based FFT filter with and without the generic
row-redistribution load balancer (the paper's core contribution), on one
processor mesh of the virtual Paragon:

* virtual time per application,
* message counts and communication volume (the paper's complexity table),
* how the filtered-line work is distributed over the mesh.

Run:  python examples/filtering_showdown.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Decomposition2D,
    FILTER_BACKENDS,
    ProcessorMesh,
    Simulator,
    SphericalGrid,
    balanced_assignment,
    make_filter_plan,
    natural_assignment,
    prepare_filter_backend,
)
from repro.dynamics.state import initial_fields_block
from repro.parallel import PARAGON
from repro.util.tables import Table

GRID = SphericalGrid(nlat=45, nlon=72)  # 4 x 5 degrees
MESH = ProcessorMesh(5, 4)
NLAYERS = 9


def filter_once(backend):
    decomp = Decomposition2D(GRID.nlat, GRID.nlon, MESH)

    def program(ctx):
        sub = decomp.subdomain(ctx.rank)
        fields = initial_fields_block(
            GRID.lat_rad[sub.lat_slice], GRID.lon_rad[sub.lon_slice], NLAYERS
        )
        yield from ctx.barrier()
        with ctx.region("filter"):
            yield from backend.apply(ctx, fields)
        return None

    return Simulator(MESH.size, PARAGON).run(program)


def main() -> None:
    plan = make_filter_plan(GRID)
    decomp = Decomposition2D(GRID.nlat, GRID.nlon, MESH)
    print(
        f"Grid {GRID.describe()}, mesh {MESH.describe()}, "
        f"{plan.total_rows} filtered row units "
        f"(strong: poles->45deg on u,v,pt; weak: poles->60deg on ps,q)\n"
    )

    table = Table(
        f"One filter application on the virtual Paragon ({MESH.describe()})",
        ["backend", "time [ms]", "messages", "volume [kB]", "max compute [ms]"],
    )
    for name in FILTER_BACKENDS:
        backend = prepare_filter_backend(name, plan, decomp)
        res = filter_once(backend)
        tr = res.trace
        table.add_row(
            name,
            f"{tr.phase_max('filter') * 1e3:.2f}",
            tr.total_messages(),
            f"{tr.total_bytes() / 1e3:.0f}",
            f"{max(r.compute_time for r in tr.ranks) * 1e3:.2f}",
        )
    print(table.render())

    # Work distribution with and without the balancer (Figures 2-3).
    nat = natural_assignment(plan, decomp)
    bal = balanced_assignment(plan, decomp)
    t2 = Table(
        "Complete lines per rank after the transpose",
        ["assignment", "min", "max", "idle ranks"],
    )
    for label, a in (("natural", nat), ("balanced (eq. 3)", bal)):
        lines = a.lines_per_rank()
        t2.add_row(label, int(lines.min()), int(lines.max()),
                   int((lines == 0).sum()))
    print()
    print(t2.render())
    print(
        f"\nThe balancer moves {bal.rows_moved()} of {plan.total_rows} row "
        "units in stage A, after which every rank FFTs an equal share."
    )


if __name__ == "__main__":
    main()
