#!/usr/bin/env python
"""Profiling a run: spans, metrics and a Perfetto trace via repro.api.

Runs the Figure-1 experiment (small mesh) under observation and shows
what the observability subsystem captured:

* the span forest — where, inside a step, virtual time goes;
* the Figure-1 component fractions rebuilt from spans alone, next to
  the trace-accounting numbers the experiment itself reports;
* counter metrics (messages, physics flops by component);
* a Chrome-trace export you can open at https://ui.perfetto.dev.

Run:  python examples/profile_trace.py
"""

from __future__ import annotations

from collections import Counter

import repro.api as api
from repro.obs import render_metrics_markdown, validate_chrome_trace

MESH = (4, 4)


def main() -> None:
    res = api.run("fig1", obs=True, meshes=(MESH,), nsteps=4)
    obs = res.observer

    print(res.render())

    print(f"recorded {len(obs.spans)} spans and {len(obs.instants)} "
          f"instants across {len(obs.runs)} run(s)\n")

    counts = Counter(s.name for s in obs.spans)
    print("most frequent spans:")
    for name, n in counts.most_common(8):
        total = sum(s.duration for s in obs.spans if s.name == name)
        print(f"  {name:20s} x{n:5d}  {total:10.3f} virtual s summed")

    fracs = res.figure1()
    print("\nFigure-1 fractions rebuilt from spans:")
    print(f"  dynamics share of main body : {100 * fracs['dynamics_fraction']:.1f}%")
    print(f"  filtering share of dynamics : {100 * fracs['filtering_fraction']:.1f}%")

    print("\n" + render_metrics_markdown(res.metrics()))

    doc = res.trace()
    errors = validate_chrome_trace(doc)
    out = "profile_fig1.json"
    assert not errors, errors
    import json

    with open(out, "w") as fh:
        json.dump(doc, fh)
    print(f"wrote {len(doc['traceEvents'])} events to {out} — "
          f"open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
