#!/usr/bin/env python
"""Machine-parameter ablations: what the conclusions depend on.

The paper's results are tied to mid-90s machine balance points.  This
example sweeps the machine model around the Paragon preset with the fast
analytic cost model and asks:

* how does the filtering-strategy ranking move with network latency?
* when does the load-balanced FFT stop paying (very fast networks)?
* how does the T3D/Paragon total-time ratio decompose?

Run:  python examples/machine_sensitivity.py
"""

from __future__ import annotations

from repro import AGCMConfig
from repro.model.analytic import estimate_costs
from repro.parallel import PARAGON, T3D, ProcessorMesh
from repro.util.tables import Table

MESH = ProcessorMesh(8, 8)


def latency_sweep() -> None:
    cfg = AGCMConfig.paper_2x2_5()
    table = Table(
        f"Filtering s/day vs network latency ({MESH.describe()} mesh, "
        "Paragon base)",
        ["latency [us]", "convolution", "fft", "fft-lb", "LB still wins?"],
    )
    for factor in (0.1, 1.0, 10.0, 100.0):
        machine = PARAGON.with_overrides(
            latency=PARAGON.latency * factor,
            overhead=min(PARAGON.overhead * factor, PARAGON.latency * factor),
        )
        costs = {
            b: estimate_costs(cfg.with_(filter_backend=b), MESH, machine)
            .filtering
            for b in ("convolution-ring", "fft", "fft-lb")
        }
        table.add_row(
            f"{machine.latency * 1e6:.0f}",
            costs["convolution-ring"],
            costs["fft"],
            costs["fft-lb"],
            "yes" if costs["fft-lb"] < costs["fft"] else "no",
        )
    print(table.render())
    print(
        "High latency penalises the transpose's extra messages; the paper's\n"
        "choice of the transpose variant assumed 1990s latencies where the\n"
        "FFT compute savings dominate.\n"
    )


def flop_rate_sweep() -> None:
    cfg = AGCMConfig.paper_2x2_5()
    table = Table(
        "Total s/day vs node speed (8 x 8 mesh, Paragon network)",
        ["flop rate [Mflop/s]", "dynamics", "physics", "total",
         "comm-bound?"],
    )
    for rate in (3e6, 6e6, 15e6, 60e6, 600e6):
        machine = PARAGON.with_overrides(flop_rate=rate)
        est = estimate_costs(cfg, MESH, machine)
        comm_bound = est.halo + est.filtering > est.fd
        table.add_row(
            f"{rate / 1e6:.0f}",
            est.dynamics,
            est.physics,
            est.total,
            "yes" if comm_bound else "no",
        )
    print(table.render())
    print(
        "Faster nodes push the code toward communication-bound, where the\n"
        "paper's algorithmic message-count arguments matter even more.\n"
    )


def machine_ratio() -> None:
    cfg = AGCMConfig.paper_2x2_5()
    table = Table(
        "Paragon vs T3D decomposition (8 x 8 mesh, s/day)",
        ["component", "paragon", "t3d", "ratio"],
    )
    p = estimate_costs(cfg, MESH, PARAGON)
    t = estimate_costs(cfg, MESH, T3D)
    for name in ("fd", "halo", "filtering", "physics", "total"):
        pv, tv = getattr(p, name), getattr(t, name)
        table.add_row(name, pv, tv, f"{pv / tv:.1f}x")
    print(table.render())
    print(
        "\nThe ~2.5x overall gap the paper reports is almost entirely the\n"
        "sustained flop-rate ratio; the T3D's faster network widens it\n"
        "slightly on the communication components."
    )


def main() -> None:
    latency_sweep()
    flop_rate_sweep()
    machine_ratio()


if __name__ == "__main__":
    main()
