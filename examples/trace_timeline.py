#!/usr/bin/env python
"""Seeing the load imbalance: event timelines of the polar filter.

Runs one filtering application with and without the generic row
redistribution on the virtual Paragon, with event recording on, and
renders:

* a text Gantt chart per rank — without balancing, the equatorial
  processor rows are pure wait ('.') while the polar rows compute ('#');
  with balancing, everyone computes;
* the communication matrix — the transpose's all-to-all blocks and the
  stage-A redistribution traffic are directly visible.

Run:  python examples/trace_timeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Decomposition2D,
    ProcessorMesh,
    Simulator,
    SphericalGrid,
    make_filter_plan,
    prepare_filter_backend,
)
from repro.dynamics.state import initial_fields_block
from repro.parallel import PARAGON, busy_fraction, communication_matrix, render_gantt

GRID = SphericalGrid(nlat=24, nlon=32)
MESH = ProcessorMesh(4, 4)
NLAYERS = 6


def run(backend_name: str):
    decomp = Decomposition2D(GRID.nlat, GRID.nlon, MESH)
    plan = make_filter_plan(GRID)
    backend = prepare_filter_backend(backend_name, plan, decomp)

    def program(ctx):
        sub = decomp.subdomain(ctx.rank)
        fields = initial_fields_block(
            GRID.lat_rad[sub.lat_slice], GRID.lon_rad[sub.lon_slice], NLAYERS
        )
        yield from ctx.barrier()
        yield from backend.apply(ctx, fields)
        yield from ctx.barrier(tag=1)
        return None

    return Simulator(MESH.size, PARAGON, record_events=True).run(program)


def main() -> None:
    for backend in ("fft", "fft-lb"):
        res = run(backend)
        print(f"=== {backend}: one filter application, "
              f"{res.elapsed * 1e3:.2f} virtual ms ===")
        print(render_gantt(res.trace, res.elapsed, width=64))
        frac = busy_fraction(res.trace, res.elapsed)
        idle = int((frac < 0.05).sum())
        print(f"ranks <5% busy: {idle} of {MESH.size}\n")

    res = run("fft-lb")
    cm = communication_matrix(res.trace)
    print("Communication matrix (kB sent, fft-lb):")
    with np.printoptions(linewidth=200, precision=1, suppress=True):
        print(cm / 1e3)
    print(
        "\nBlock structure: the dense 4x4 blocks on the diagonal are the\n"
        "row transposes; the off-diagonal bands are the stage-A row\n"
        "redistribution (polar processor rows shipping filtered-row\n"
        "segments to equatorial ones and back)."
    )


if __name__ == "__main__":
    main()
