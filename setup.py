"""Setup shim for environments without the `wheel` package (offline legacy installs)."""
from setuptools import setup

setup()
