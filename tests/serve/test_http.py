"""The TCP/HTTP front end: routing, status codes, 429 semantics.

Tier-1: real sockets on an ephemeral loopback port, but only
millisecond-scale units.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import Gateway, ServeConfig


async def _request(host: str, port: int, method: str, path: str,
                   body: dict | None = None):
    """One raw HTTP exchange; returns (status, headers, json_doc)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + payload)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        raw = await reader.read()
        return status, headers, json.loads(raw) if raw else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


def with_server(config, fn):
    """Start a gateway server, run ``fn(host, port, gateway)``."""

    async def go():
        gateway = Gateway(config)
        host, port = await gateway.start_server()
        try:
            return await fn(host, port, gateway)
        finally:
            await gateway.stop()

    return asyncio.run(go())


class TestEndpoints:
    def test_run_roundtrip_cold_then_warm(self, tmp_path):
        async def scenario(host, port, _gateway):
            cold = await _request(host, port, "POST", "/run",
                                  {"experiment": "sleep:0.02#http"})
            warm = await _request(host, port, "POST", "/run",
                                  {"experiment": "sleep:0.02#http"})
            return cold, warm

        cold, warm = with_server(
            ServeConfig(cache_dir=str(tmp_path)), scenario
        )
        assert cold[0] == 200
        assert cold[2]["units"][0]["served"] == "executed"
        assert warm[0] == 200
        assert warm[2]["units"][0]["served"] == "hit"
        assert (cold[2]["units"][0]["result_sha256"]
                == warm[2]["units"][0]["result_sha256"])

    def test_campaign_status_and_metrics(self, tmp_path):
        async def scenario(host, port, _gateway):
            camp = await _request(
                host, port, "POST", "/campaign",
                {"selectors": ["sleep:0.01#c1", "sleep:0.01#c2"]},
            )
            status = await _request(host, port, "GET", "/status")
            metrics = await _request(host, port, "GET", "/metrics")
            return camp, status, metrics

        camp, status, metrics = with_server(
            ServeConfig(cache_dir=str(tmp_path)), scenario
        )
        assert camp[0] == 200 and len(camp[2]["units"]) == 2
        assert status[0] == 200
        # status/metrics reads are not counted; the campaign call is
        assert status[2]["counters"]["requests"] == 1
        assert sum(status[2]["units"].values()) == 2
        assert metrics[0] == 200
        assert "serve.requests" in metrics[2]["counters"]

    def test_rejection_is_http_429_with_retry_after(self):
        async def scenario(host, port, _gateway):
            slow = asyncio.ensure_future(_request(
                host, port, "POST", "/run",
                {"experiment": "sleep:0.4#saturate"},
            ))
            await asyncio.sleep(0.1)  # the slow unit is now executing
            rejected = await _request(
                host, port, "POST", "/run",
                {"experiment": "sleep:0.4#overflow"},
            )
            ok = await slow
            return rejected, ok

        rejected, ok = with_server(
            ServeConfig(pool_workers=1, queue_limit=1,
                        retry_after_seconds=3.0),
            scenario,
        )
        assert ok[0] == 200
        status, headers, doc = rejected
        assert status == 429
        assert headers["retry-after"] == "3"
        assert doc["retry_after"] == 3.0
        assert "admission queue full" in doc["error"]


class TestProtocolErrors:
    def test_error_codes(self):
        async def scenario(host, port, _gateway):
            return {
                "no_body": await _request(host, port, "POST", "/run"),
                "bad_selector": await _request(
                    host, port, "POST", "/run", {"experiment": 7}
                ),
                "unknown_experiment": await _request(
                    host, port, "POST", "/run", {"experiment": "nope"}
                ),
                "unknown_path": await _request(host, port, "GET", "/x"),
                "wrong_method": await _request(host, port, "GET", "/run"),
                "bad_selectors": await _request(
                    host, port, "POST", "/campaign", {"selectors": [1]}
                ),
            }

        results = with_server(ServeConfig(), scenario)
        assert results["no_body"][0] == 400
        assert results["bad_selector"][0] == 400
        assert results["unknown_experiment"][0] == 404
        assert "unknown experiment" in (
            results["unknown_experiment"][2]["error"]
        )
        assert results["unknown_path"][0] == 404
        assert results["wrong_method"][0] == 405
        assert results["bad_selectors"][0] == 400

    def test_unit_failure_maps_to_500(self):
        def boom(unit):
            raise RuntimeError("kaput")

        async def scenario(host, port, _gateway):
            return await _request(host, port, "POST", "/run",
                                  {"experiment": "sleep:0.01#f"})

        async def go():
            gateway = Gateway(ServeConfig(), runner=boom)
            host, port = await gateway.start_server()
            try:
                return await scenario(host, port, gateway)
            finally:
                await gateway.stop()

        status, _, doc = asyncio.run(go())
        assert status == 500
        assert doc["units"][0]["served"] == "error"
        assert "kaput" in doc["units"][0]["error"]
