"""SLO accounting and the deterministic load plan (tier-1, no sockets)."""

from __future__ import annotations

import math

import pytest

from repro.serve.loadgen import LoadPlan
from repro.serve.slo import LatencyReservoir, ServeMetrics, percentile


class TestPercentiles:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile([42.0], 0.99) == 42.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_reservoir_ring_overwrite(self):
        reservoir = LatencyReservoir(size=4)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0, 200.0):
            reservoir.record(v)
        # 1.0 and 2.0 were overwritten; the window is {3, 4, 100, 200}
        assert len(reservoir) == 4
        assert reservoir.count == 6
        assert reservoir.quantile(1.0) == 200.0
        assert reservoir.quantile(0.5) == 4.0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyReservoir(size=0)


class TestServeMetrics:
    def test_snapshot_rates(self):
        metrics = ServeMetrics()
        for _ in range(4):
            metrics.request()
        metrics.unit("hit", 0.001)
        metrics.unit("hit", 0.002)
        metrics.unit("coalesced", 0.1)
        metrics.unit("executed", 0.2)
        metrics.rejected()
        snap = metrics.snapshot()
        assert snap["units"] == {"hit": 2, "coalesced": 1, "executed": 1}
        assert snap["hit_rate"] == 0.5
        assert snap["coalesce_rate"] == 0.25
        assert snap["counters"]["rejected"] == 1
        assert snap["latency_us"]["hit"]["p50"] == pytest.approx(1000.0)
        # empty class renders as None, not NaN (JSON-safe)
        metrics2 = ServeMetrics()
        assert metrics2.snapshot()["latency_us"]["hit"]["p99"] is None
        assert metrics2.snapshot()["hit_rate"] is None

    def test_registry_namespacing(self):
        metrics = ServeMetrics()
        names = metrics.registry.as_dict()
        assert all(k.startswith("serve.")
                   for bucket in names.values() for k in bucket)


class TestLoadPlan:
    def test_same_seed_same_plan(self):
        assert LoadPlan.generate(123) == LoadPlan.generate(123)

    def test_different_seeds_differ(self):
        assert LoadPlan.generate(1) != LoadPlan.generate(2)

    def test_bursts_share_one_fresh_key(self):
        plan = LoadPlan.generate(99, clients=6, bursts=3)
        assert len(plan.requests) == 18
        # 3 distinct keys, seed-namespaced so plans never collide
        assert len(plan.selectors) == 3
        assert all("lg99-" in s for s in plan.selectors)
        # every burst is dominated by its focus key: at least
        # clients-1 requests on one selector
        by_selector = {}
        for req in plan.requests:
            by_selector[req.selector] = by_selector.get(req.selector, 0) + 1
        assert max(by_selector.values()) >= 5

    def test_offsets_are_bursty_and_sorted(self):
        plan = LoadPlan.generate(7, clients=4, bursts=2,
                                 burst_spacing=0.5, jitter=0.02)
        offsets = [r.offset for r in plan.requests]
        assert offsets == sorted(offsets)
        assert max(o for o in offsets if o < 0.25) < 0.03
        assert min(o for o in offsets if o > 0.25) >= 0.5

    def test_guard_rails(self):
        with pytest.raises(ValueError, match="at least 2 clients"):
            LoadPlan.generate(1, clients=1)
        with pytest.raises(ValueError, match="below unit_seconds"):
            LoadPlan.generate(1, jitter=0.2, unit_seconds=0.1)
