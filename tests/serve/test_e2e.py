"""End-to-end serving SLOs over real TCP (the ``serve`` marker suite).

Replays the canonical seeded bursty plan against a live gateway —
exactly what ``python -m repro serve --bench`` and the CI serve-smoke
job run — and asserts the gated floors directly.
"""

from __future__ import annotations

import pytest

from repro.serve.bench import run_bench, serve_bench_metrics
from repro.verify.bench_record import (
    SERVE_MAX_WARM_HIT_P99_US,
    SERVE_MIN_COALESCE_RATE,
    SERVE_MIN_WARM_HIT_RATE,
    check_constraints,
)

pytestmark = pytest.mark.serve


class TestSeededReplay:
    def test_cold_and_warm_pass_meet_the_floors(self, tmp_path):
        report = run_bench(cache_dir=str(tmp_path))
        cold, warm = report["cold"], report["warm"]

        # zero failed requests on both passes
        assert cold["failures"] == 0
        assert warm["failures"] == 0
        # answers are bit-identical per key, coalesced or hit alike
        assert cold["sha_conflicts"] == []
        assert warm["sha_conflicts"] == []

        # cold pass: bursts of identical requests collapse — at most
        # one execution per distinct key in the canonical 4-burst plan
        assert cold["coalesce_rate"] >= SERVE_MIN_COALESCE_RATE
        assert cold["served"]["executed"] <= 4

        # warm pass: everything from cache, bounded tail
        assert warm["hit_rate"] >= SERVE_MIN_WARM_HIT_RATE
        assert warm["latency_us"]["hit"]["p99"] <= SERVE_MAX_WARM_HIT_P99_US
        assert warm["served"]["executed"] == 0
        assert warm["throughput_rps"] > 0

    def test_bench_metrics_satisfy_the_gate(self):
        metrics = serve_bench_metrics()
        expected = {
            "serve_coalesce_rate", "serve_warm_hit_rate",
            "serve_warm_hit_p99_us", "serve_throughput_rps",
            "serve_failed_requests", "serve_cold_seconds",
            "serve_warm_seconds", "serve_cold_requests",
        }
        assert expected <= set(metrics)
        assert check_constraints(metrics) == []

    def test_gate_rejects_degraded_serving(self):
        problems = check_constraints({
            "serve_coalesce_rate": 0.1,
            "serve_warm_hit_rate": 0.5,
            "serve_warm_hit_p99_us": 10 * SERVE_MAX_WARM_HIT_P99_US,
            "serve_failed_requests": 3.0,
        })
        assert len(problems) == 4
        assert any("coalesce" in p for p in problems)
        assert any("hit_rate" in p or "hit rate" in p.lower()
                   for p in problems)
