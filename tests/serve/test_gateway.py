"""Gateway semantics: coalescing, cache-first serving, admission control.

These are tier-1 tests: in-process (no sockets), sub-second sleeps
only.  The full TCP end-to-end replays live in ``test_e2e.py`` behind
the ``serve`` marker.
"""

from __future__ import annotations

import asyncio
import pickle
import threading

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.units import enumerate_units, execute_unit
from repro.serve import Gateway, RejectedError, ServeConfig


class CountingRunner:
    """Counts executions per unit label (thread-safe: pool threads)."""

    def __init__(self, fail_labels=()):
        self.calls = {}
        self.fail_labels = set(fail_labels)
        self._lock = threading.Lock()

    def __call__(self, unit):
        with self._lock:
            self.calls[unit.label] = self.calls.get(unit.label, 0) + 1
        if unit.label in self.fail_labels:
            raise RuntimeError(f"injected failure for {unit.label}")
        return execute_unit(unit)

    def total(self) -> int:
        return sum(self.calls.values())


def gather_run(gateway: Gateway, selectors):
    """Resolve several /run calls concurrently inside one loop."""

    async def go():
        async with gateway:
            return await asyncio.gather(
                *(gateway.call_run(s) for s in selectors)
            )

    return asyncio.run(go())


class TestCoalescing:
    def test_concurrent_identical_requests_execute_once(self, tmp_path):
        """The acceptance property: N concurrent identical requests to a
        cold key run the computation exactly once, and every client
        receives a bit-identical result."""
        runner = CountingRunner()
        gateway = Gateway(
            ServeConfig(cache_dir=str(tmp_path), pool_workers=4),
            runner=runner,
        )
        n = 8
        responses = gather_run(gateway, ["sleep:0.15#coalesce"] * n)

        assert runner.total() == 1  # the computation ran exactly once
        served = [r.doc["units"][0]["served"] for r in responses]
        assert served.count("executed") == 1
        assert served.count("coalesced") == n - 1

        # bit-identical answers: same pickle bytes, same content hash
        blobs = {pickle.dumps(r.values[0], protocol=4) for r in responses}
        assert len(blobs) == 1
        hashes = {r.doc["units"][0]["result_sha256"] for r in responses}
        assert len(hashes) == 1

        snap = gateway.metrics.snapshot()
        assert snap["units"]["executed"] == 1
        assert snap["units"]["coalesced"] == n - 1
        assert snap["counters"]["errors"] == 0

    def test_coalescing_without_cache(self):
        """Coalescing is an in-flight property; it needs no cache dir."""
        runner = CountingRunner()
        gateway = Gateway(ServeConfig(pool_workers=2), runner=runner)
        responses = gather_run(gateway, ["sleep:0.1#nocache"] * 4)
        assert runner.total() == 1
        assert {r.doc["units"][0]["served"] for r in responses} == {
            "executed", "coalesced",
        }

    def test_sequential_requests_hit_cache_not_coalesce(self, tmp_path):
        runner = CountingRunner()
        gateway = Gateway(
            ServeConfig(cache_dir=str(tmp_path)), runner=runner
        )

        async def go():
            async with gateway:
                first = await gateway.call_run("sleep:0.02#seq")
                second = await gateway.call_run("sleep:0.02#seq")
                return first, second

        first, second = asyncio.run(go())
        assert first.doc["units"][0]["served"] == "executed"
        assert second.doc["units"][0]["served"] == "hit"
        assert runner.total() == 1


class TestCacheFirst:
    def test_warm_key_never_touches_the_pool(self, tmp_path):
        # Pre-populate the store under the key the gateway will derive;
        # the runner would sleep 5s (and fail the test timeout) if the
        # gateway ever executed it.
        unit = enumerate_units(["sleep:5#prewarmed"])[0]
        marker = {"prewarmed": True}
        ResultCache(str(tmp_path)).put(unit.key, marker)

        def forbidden(_unit):
            raise AssertionError("cache hit must not reach the pool")

        gateway = Gateway(
            ServeConfig(cache_dir=str(tmp_path)), runner=forbidden
        )
        (response,) = gather_run(gateway, ["sleep:5#prewarmed"])
        assert response.doc["units"][0]["served"] == "hit"
        assert response.values[0] == marker

    def test_campaign_endpoint_shares_the_same_path(self, tmp_path):
        runner = CountingRunner()
        gateway = Gateway(
            ServeConfig(cache_dir=str(tmp_path), pool_workers=2),
            runner=runner,
        )

        async def go():
            async with gateway:
                cold = await gateway.call_campaign(
                    selectors=["sleep:0.05#a", "sleep:0.05#b"]
                )
                warm = await gateway.call_campaign(
                    selectors=["sleep:0.05#a", "sleep:0.05#b"]
                )
                return cold, warm

        cold, warm = asyncio.run(go())
        assert [u["served"] for u in cold.doc["units"]] == [
            "executed", "executed",
        ]
        assert [u["served"] for u in warm.doc["units"]] == ["hit", "hit"]
        assert runner.total() == 2

    def test_campaign_argument_validation(self):
        gateway = Gateway()

        async def go():
            async with gateway:
                with pytest.raises(ValueError, match="not both"):
                    await gateway.call_campaign(
                        selectors=["sleep:0.01#x"], sweep="mini"
                    )
                with pytest.raises(ValueError, match="selectors or a sweep"):
                    await gateway.call_campaign()
                with pytest.raises(KeyError, match="unknown sweep"):
                    await gateway.call_campaign(sweep="nope")

        asyncio.run(go())


class TestAdmissionControl:
    def test_overload_is_rejected_with_retry_after(self):
        gateway = Gateway(
            ServeConfig(pool_workers=1, queue_limit=1,
                        retry_after_seconds=2.5)
        )

        async def go():
            async with gateway:
                first = asyncio.ensure_future(
                    gateway.call_run("sleep:0.3#slow")
                )
                await asyncio.sleep(0.05)  # first is now executing
                with pytest.raises(RejectedError) as excinfo:
                    await gateway.call_run("sleep:0.3#other")
                assert excinfo.value.retry_after == 2.5
                assert excinfo.value.limit == 1
                # identical traffic still coalesces while saturated:
                # admission control never refuses work it can share
                shared = await gateway.call_run("sleep:0.3#slow")
                assert shared.doc["units"][0]["served"] == "coalesced"
                await first
                return gateway.metrics.snapshot()

        snap = asyncio.run(go())
        assert snap["counters"]["rejected"] == 1
        assert snap["queue_depth"] == 0  # drained after completion

    def test_depth_frees_up_after_completion(self):
        gateway = Gateway(ServeConfig(pool_workers=1, queue_limit=1))

        async def go():
            async with gateway:
                await gateway.call_run("sleep:0.02#one")
                # the slot freed: a different key is admitted again
                second = await gateway.call_run("sleep:0.02#two")
                assert second.doc["units"][0]["served"] == "executed"

        asyncio.run(go())


class TestFailures:
    def test_unit_error_is_reported_not_raised(self, tmp_path):
        runner = CountingRunner(fail_labels=["sleep@0.01#boom"])
        gateway = Gateway(
            ServeConfig(cache_dir=str(tmp_path)), runner=runner
        )
        (response,) = gather_run(gateway, ["sleep:0.01#boom"])
        assert response.failures == 1
        entry = response.doc["units"][0]
        assert entry["served"] == "error"
        assert "injected failure" in entry["error"]
        assert gateway.metrics.snapshot()["counters"]["errors"] == 1
        # a failed unit is not cached: a retry executes again
        assert not ResultCache(str(tmp_path)).contains(entry["key"])

    def test_error_propagates_to_coalesced_waiters(self):
        runner = CountingRunner(fail_labels=["sleep@0.1#shared-boom"])
        gateway = Gateway(ServeConfig(pool_workers=2), runner=runner)
        responses = gather_run(gateway, ["sleep:0.1#shared-boom"] * 3)
        assert runner.total() == 1
        assert all(r.failures == 1 for r in responses)

    def test_unknown_selector_raises_keyerror(self):
        gateway = Gateway()

        async def go():
            async with gateway:
                with pytest.raises(KeyError, match="unknown experiment"):
                    await gateway.call_run("not-an-experiment")

        asyncio.run(go())


class TestStatus:
    def test_snapshot_shape_and_accounting(self, tmp_path):
        gateway = Gateway(ServeConfig(cache_dir=str(tmp_path)))
        gather_run(
            gateway,
            ["sleep:0.05#s1", "sleep:0.05#s1", "sleep:0.05#s2"],
        )
        status = gateway.status()
        assert status["counters"]["requests"] == 3
        answered = status["units"]
        assert sum(answered.values()) == 3
        assert answered["executed"] == 2
        assert status["cache_entries"] == 2
        assert status["queue_limit"] == 64
        assert status["spans_recorded"] > 0
        for cls in ("hit", "coalesced", "executed"):
            assert set(status["latency_us"][cls]) == {"p50", "p99"}

    def test_spans_record_request_lifecycle(self):
        gateway = Gateway()
        gather_run(gateway, ["sleep:0.02#spans"])
        names = {s.name for s in gateway.observer.spans}
        assert "request:run" in names
        assert "execute" in names
        # all spans closed at shutdown
        assert all(s.end is not None for s in gateway.observer.spans)

    def test_spans_can_be_disabled(self):
        gateway = Gateway(ServeConfig(spans=False))
        gather_run(gateway, ["sleep:0.01#nospan"])
        assert gateway.observer is None
        assert gateway.status()["spans_recorded"] == 0
