"""Tests for the serial AGCM driver."""

import numpy as np
import pytest

from repro.model.agcm import AGCM
from repro.model.config import make_config


@pytest.fixture(scope="module")
def short_run():
    model = AGCM(make_config("tiny"))
    model.initialize()
    model.run(12)
    return model


class TestLifecycle:
    def test_requires_initialize(self):
        model = AGCM(make_config("tiny"))
        with pytest.raises(RuntimeError):
            model.step()
        with pytest.raises(RuntimeError):
            _ = model.state

    def test_run_advances_time(self, short_run):
        assert short_run.state.time == pytest.approx(12 * short_run.dt)
        assert len(short_run.diagnostics) == 12

    def test_stable_and_finite(self, short_run):
        assert short_run.is_stable()
        assert short_run.state.is_finite()

    def test_physics_cadence(self, short_run):
        ran = [d.physics_ran for d in short_run.diagnostics]
        every = short_run.config.physics_every
        assert ran[0] is True
        for i, r in enumerate(ran):
            assert r == (i % every == 0)

    def test_physics_flops_recorded(self, short_run):
        phys = [d for d in short_run.diagnostics if d.physics_ran]
        assert all(d.physics_flops > 0 for d in phys)


class TestPhysicalBehaviour:
    def test_mass_nearly_conserved(self, short_run):
        masses = [d.total_mass for d in short_run.diagnostics]
        drift = abs(masses[-1] - masses[0]) / masses[0]
        assert drift < 1e-3

    def test_deterministic_runs(self):
        cfg = make_config("tiny")
        a = AGCM(cfg)
        a.initialize()
        a.run(6)
        b = AGCM(cfg)
        b.initialize()
        b.run(6)
        for name, arr in a.state.fields().items():
            np.testing.assert_array_equal(arr, getattr(b.state, name))

    def test_seed_changes_solution(self):
        a = AGCM(make_config("tiny"))
        a.initialize()
        a.run(3)
        b = AGCM(make_config("tiny", seed=11))
        b.initialize()
        b.run(3)
        assert not np.allclose(a.state.pt, b.state.pt)

    def test_filter_actually_engaged(self):
        """Disabling the CFL-respecting setup must change the solution:
        run with the filter backend replaced by identity rows (weak test:
        compare filtered tendencies vs unfiltered)."""
        from repro.core.parallel_filter import apply_serial_filter

        model = AGCM(make_config("tiny"))
        model.initialize()
        model.run(2)
        tend = model._tendencies(model.state)
        before = {k: v.copy() for k, v in tend.items()}
        model._filter_tendencies(tend)
        changed = any(
            not np.allclose(before[k], tend[k]) for k in ("u", "v", "pt")
        )
        assert changed

    def test_reinitialize_resets(self, short_run):
        model = AGCM(make_config("tiny"))
        model.initialize()
        model.run(3)
        model.initialize()
        assert model.state.time == 0.0
        assert model.diagnostics == []
