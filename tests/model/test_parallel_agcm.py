"""Serial vs parallel AGCM equivalence — the central integration test."""

import numpy as np
import pytest

from repro.grid import Decomposition2D
from repro.model.agcm import AGCM
from repro.model.config import make_config
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import PARAGON, T3D, ProcessorMesh, Simulator
from repro.verify import tolerances

NSTEPS = 9  # two physics calls on the tiny config (every 4 steps)


@pytest.fixture(scope="module")
def serial_reference():
    cfg = make_config("tiny")
    model = AGCM(cfg)
    model.initialize()
    model.run(NSTEPS)
    return cfg, model.state.fields()


def _gather_fields(cfg, dims, res, decomp):
    mesh_size = decomp.mesh.size
    return {
        name: decomp.gather(
            [res.returns[r]["fields"][name] for r in range(mesh_size)]
        )
        for name in ("u", "v", "pt", "ps", "q")
    }


class TestEquivalence:
    @pytest.mark.parametrize(
        "backend", ["convolution-ring", "convolution-tree", "fft", "fft-lb"]
    )
    @pytest.mark.parametrize("dims", [(1, 1), (2, 3)])
    def test_parallel_matches_serial(self, serial_reference, backend, dims):
        cfg, ref = serial_reference
        cfg2 = cfg.with_(filter_backend=backend)
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg2, decomp, NSTEPS, True
        )
        gathered = _gather_fields(cfg2, dims, res, decomp)
        for name, want in ref.items():
            np.testing.assert_allclose(
                gathered[name], want, atol=tolerances.FIELD_ATOL,
                err_msg=f"{backend} {dims} field {name}",
            )

    def test_physics_lb_preserves_solution(self, serial_reference):
        """Moving columns between ranks must not change any result."""
        cfg, ref = serial_reference
        cfg2 = cfg.with_(physics_lb=True)
        mesh = ProcessorMesh(3, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg2, decomp, NSTEPS, True
        )
        gathered = _gather_fields(cfg2, (3, 2), res, decomp)
        for name, want in ref.items():
            np.testing.assert_allclose(gathered[name], want, atol=tolerances.FIELD_ATOL)
        moved = sum(r["columns_moved"] for r in res.returns)
        assert moved > 0  # the balancer really ran

    def test_machine_does_not_change_results(self, serial_reference):
        """Timing model and numerics are orthogonal."""
        cfg, ref = serial_reference
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res_p = Simulator(4, PARAGON).run(
            agcm_rank_program, cfg, decomp, NSTEPS, True
        )
        res_t = Simulator(4, T3D).run(
            agcm_rank_program, cfg, decomp, NSTEPS, True
        )
        for r in range(4):
            for name in ("u", "pt"):
                np.testing.assert_array_equal(
                    res_p.returns[r]["fields"][name],
                    res_t.returns[r]["fields"][name],
                )
        assert res_t.elapsed < res_p.elapsed  # but the T3D is faster


class TestTraceStructure:
    def test_phases_recorded(self, serial_reference):
        cfg, _ = serial_reference
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(4, PARAGON).run(agcm_rank_program, cfg, decomp, 4)
        phases = res.trace.phases()
        for name in ("dynamics", "physics", "filtering", "halo", "fd", "update"):
            assert name in phases

    def test_summaries(self, serial_reference):
        cfg, _ = serial_reference
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(4, PARAGON).run(agcm_rank_program, cfg, decomp, 5)
        for r, summary in enumerate(res.returns):
            assert summary["rank"] == r
            assert summary["steps"] == 5
            assert summary["finite"]
            assert summary["physics_calls"] == 2  # steps 0 and 4
