"""Tests for the physics column-flow planning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.physics_balance import (
    ColumnFlowPlan,
    Run,
    _pop_tail,
    plan_column_flow,
)


class TestPopTail:
    def test_within_one_run(self):
        runs = [Run(0, 0, 10)]
        taken = _pop_tail(runs, 4)
        assert runs == [Run(0, 0, 6)]
        assert taken == [Run(0, 6, 4)]

    def test_across_runs(self):
        runs = [Run(0, 0, 5), Run(1, 0, 3)]
        taken = _pop_tail(runs, 4)
        assert runs == [Run(0, 0, 4)]
        assert taken == [Run(0, 4, 1), Run(1, 0, 3)]

    def test_exact_run_boundary(self):
        runs = [Run(0, 0, 5), Run(1, 0, 3)]
        taken = _pop_tail(runs, 3)
        assert runs == [Run(0, 0, 5)]
        assert taken == [Run(1, 0, 3)]

    def test_overdraw(self):
        with pytest.raises(ValueError):
            _pop_tail([Run(0, 0, 2)], 5)


def _column_multiset(plan: ColumnFlowPlan, ncols):
    """Every (origin, index) column across all holdings."""
    seen = []
    for runs in plan.holdings:
        for run in runs:
            for idx in range(run.start, run.start + run.count):
                seen.append((run.origin, idx))
    return sorted(seen)


class TestPlanInvariants:
    @given(
        loads=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=16),
        seed=st.integers(0, 100),
        passes=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_column_exactly_once(self, loads, seed, passes):
        rng = np.random.default_rng(seed)
        ncols = rng.integers(1, 50, size=len(loads)).tolist()
        plan = plan_column_flow(loads, ncols, max_passes=passes)
        expected = sorted(
            (r, i) for r in range(len(loads)) for i in range(ncols[r])
        )
        assert _column_multiset(plan, ncols) == expected

    def test_balanced_loads_no_moves(self):
        plan = plan_column_flow([5.0, 5.0, 5.0], [10, 10, 10])
        assert plan.passes == []
        assert plan.total_columns_moved() == 0

    def test_heavy_rank_sheds_columns(self):
        plan = plan_column_flow([10.0, 1.0], [100, 100])
        assert plan.held_columns(0) < 100
        assert plan.held_columns(1) > 100

    def test_never_empties_a_rank(self):
        plan = plan_column_flow([100.0, 0.001], [10, 10], max_passes=3)
        assert plan.held_columns(0) >= 1

    def test_expected_returns_symmetry(self):
        plan = plan_column_flow([8.0, 2.0, 6.0, 4.0], [40, 40, 40, 40])
        for origin in range(4):
            expected = plan.expected_returns(origin)
            for holder, run in expected:
                assert run.origin == origin
                assert run in plan.holdings[holder]

    def test_guest_runs(self):
        plan = plan_column_flow([10.0, 1.0], [50, 50])
        guests = plan.guest_runs(1)
        assert guests and all(r.origin == 0 for r in guests)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            plan_column_flow([1.0, 2.0], [10])

    def test_quantised_amounts(self):
        """Integer weighting floors the transfers (Fig. 6 arithmetic)."""
        plan_int = plan_column_flow(
            [65, 24, 38, 15], [100, 100, 100, 100],
            max_passes=1, integer_amounts=True,
        )
        # 65 -> 15 moves floor(25/65 * 100) columns.
        move = plan_int.passes[0][0]
        assert move.src == 0 and move.dst == 3
        assert move.ncols == int(25 / 65 * 100)
