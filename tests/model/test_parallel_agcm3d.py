"""3-D decomposition (AGCM-3DLF) vs serial AGCM — bit-exact equivalence.

The fft filter backends are bit-identical to the serial path, so for
them the whole 3-D trajectory — pillar transposes to column space,
the full-K surface-pressure closure, the transposed vertical-diffusion
solves, leap-format stepping — must reproduce the serial fields with
``assert_array_equal`` (atol 0), on every mesh shape including pure
vertical (1 x 1 x K) splits.  The convolution backends reassociate
their filter sum and are held to the usual loose tolerance.
"""

import numpy as np
import pytest

from repro.grid import Decomposition2D
from repro.grid.decomposition3d import Decomposition3D
from repro.model.agcm import AGCM
from repro.model.config import make_config
from repro.model.parallel_agcm import agcm3d_rank_program, agcm_rank_program
from repro.parallel import PARAGON, ProcessorMesh, Simulator
from repro.verify import tolerances

NSTEPS = 9  # two physics calls on the tiny config (every 4 steps)

FIELDS = ("u", "v", "pt", "ps", "q")


@pytest.fixture(scope="module")
def serial_reference():
    cfg = make_config("tiny")
    model = AGCM(cfg)
    model.initialize()
    model.run(NSTEPS)
    return cfg, model.state.fields()


def _run_3d(cfg, dims, nsteps=NSTEPS):
    mesh = ProcessorMesh(*dims)
    decomp = Decomposition3D(cfg.nlat, cfg.nlon, cfg.nlayers, mesh)
    res = Simulator(mesh.size, PARAGON).run(
        agcm3d_rank_program, cfg, decomp, nsteps, True
    )
    gathered = {
        name: decomp.gather(
            [res.returns[r]["fields"][name] for r in range(mesh.size)],
            single_level=(name == "ps"),
        )
        for name in FIELDS
    }
    return res, gathered


class TestExactEquivalence:
    @pytest.mark.parametrize("backend", ["fft", "fft-lb"])
    @pytest.mark.parametrize(
        "dims", [(1, 1, 4), (2, 3, 2), (2, 2, 4), (2, 3, 1)]
    )
    def test_bit_exact_vs_serial(self, serial_reference, backend, dims):
        cfg, ref = serial_reference
        cfg2 = cfg.with_(filter_backend=backend)
        _, gathered = _run_3d(cfg2, dims)
        for name, want in ref.items():
            np.testing.assert_array_equal(
                gathered[name], want,
                err_msg=f"{backend} {dims} field {name}",
            )

    @pytest.mark.parametrize("backend", ["convolution-ring"])
    def test_convolution_within_loose_tolerance(self, serial_reference,
                                                backend):
        cfg, ref = serial_reference
        cfg2 = cfg.with_(filter_backend=backend)
        _, gathered = _run_3d(cfg2, (2, 2, 2))
        for name, want in ref.items():
            np.testing.assert_allclose(
                gathered[name], want, atol=tolerances.FIELD_ATOL,
                err_msg=f"{backend} field {name}",
            )

    def test_vertical_diffusion_preserved(self, serial_reference):
        """The transposed Thomas solves must match the serial vdiff."""
        cfg, _ = serial_reference
        cfg2 = cfg.with_(filter_backend="fft", vertical_diffusion=5.0)
        model = AGCM(cfg2)
        model.initialize()
        model.run(NSTEPS)
        _, gathered = _run_3d(cfg2, (2, 2, 4))
        for name, want in model.state.fields().items():
            np.testing.assert_array_equal(
                gathered[name], want, err_msg=f"vdiff field {name}"
            )

    def test_degenerates_to_2d_program(self, serial_reference):
        """nlev_procs == 1 reproduces the classic 2-D program exactly."""
        cfg, _ = serial_reference
        mesh = ProcessorMesh(2, 3)
        decomp2 = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res2 = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg, decomp2, NSTEPS, True
        )
        _, g3 = _run_3d(cfg, (2, 3, 1))
        g2 = {
            name: decomp2.gather(
                [res2.returns[r]["fields"][name] for r in range(mesh.size)]
            )
            for name in FIELDS
        }
        for name in FIELDS:
            np.testing.assert_array_equal(g3[name], g2[name])


class TestTraceStructure:
    def test_transpose_phase_recorded_when_pillar(self, serial_reference):
        cfg, _ = serial_reference
        res, _ = _run_3d(cfg, (1, 2, 2), nsteps=4)
        phases = res.trace.phases()
        assert "transpose" in phases
        for name in ("dynamics", "physics", "filtering", "halo", "fd"):
            assert name in phases

    def test_no_transpose_phase_without_vertical_split(self,
                                                      serial_reference):
        cfg, _ = serial_reference
        res, _ = _run_3d(cfg, (2, 2, 1), nsteps=4)
        assert "transpose" not in res.trace.phases()

    def test_summaries(self, serial_reference):
        cfg, _ = serial_reference
        res, _ = _run_3d(cfg, (2, 2, 2), nsteps=5)
        for r, summary in enumerate(res.returns):
            assert summary["rank"] == r
            assert summary["steps"] == 5
            assert summary["finite"]
            assert len(summary["subdomain"]) == 6


class TestSpeedup:
    def test_3d_beats_2d_at_16_nodes(self, serial_reference):
        """The tentpole claim, pinned: the 2x2x4 slab layout beats the
        4x4 horizontal layout at equal node count on the PARAGON."""
        cfg, _ = serial_reference
        mesh2 = ProcessorMesh(4, 4)
        d2 = Decomposition2D(cfg.nlat, cfg.nlon, mesh2)
        r2 = Simulator(16, PARAGON).run(agcm_rank_program, cfg, d2, 4)
        r3, _ = _run_3d(cfg, (2, 2, 4), nsteps=4)
        assert r2.elapsed / r3.elapsed > 1.05
