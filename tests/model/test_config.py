"""Tests for AGCM configuration."""

import pytest

from repro import constants as c
from repro.model.config import (
    AGCMConfig,
    PAPER_9LAYER,
    PAPER_15LAYER,
    TINY,
    make_config,
)


class TestPresets:
    def test_paper_9layer_grid(self):
        assert (PAPER_9LAYER.nlat, PAPER_9LAYER.nlon, PAPER_9LAYER.nlayers) == (
            90, 144, 9,
        )

    def test_paper_15layer(self):
        assert PAPER_15LAYER.nlayers == 15

    def test_make_config_overrides(self):
        cfg = make_config("2x2.5x9", filter_backend="fft")
        assert cfg.filter_backend == "fft"
        assert cfg.nlat == 90

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            make_config("1x1x50")

    def test_describe_mentions_resolution(self):
        assert "2.5" in PAPER_9LAYER.describe()


class TestDerivedQuantities:
    def test_dt_from_cfl_at_45(self):
        """The CFL-derived dt respects the 45-degree bound with margin."""
        from repro.dynamics.cfl import max_stable_dt

        cfg = PAPER_9LAYER
        assert cfg.timestep() <= max_stable_dt(cfg.make_grid(), 45.0)

    def test_explicit_dt_honoured(self):
        cfg = PAPER_9LAYER.with_(dt=300.0)
        assert cfg.timestep() == 300.0

    def test_steps_per_day(self):
        cfg = PAPER_9LAYER.with_(dt=450.0)
        assert cfg.steps_per_day() == round(c.SECONDS_PER_DAY / 450.0)

    def test_physics_interval(self):
        cfg = PAPER_9LAYER.with_(dt=400.0, physics_every=4)
        assert cfg.physics_interval_seconds() == pytest.approx(1600.0)

    def test_with_returns_new_object(self):
        cfg2 = TINY.with_(seed=99)
        assert cfg2.seed == 99 and TINY.seed != 99


class TestValidation:
    def test_grid_too_small(self):
        with pytest.raises(ValueError):
            AGCMConfig(nlat=2, nlon=4)

    def test_bad_layers(self):
        with pytest.raises(ValueError):
            AGCMConfig(nlayers=0)

    def test_bad_physics_every(self):
        with pytest.raises(ValueError):
            AGCMConfig(physics_every=0)

    def test_bad_lb_passes(self):
        with pytest.raises(ValueError):
            AGCMConfig(lb_passes=0)
