"""Tests for timing reports and the analytic cost model."""

import pytest

from repro.grid import Decomposition2D
from repro.model import (
    ComponentBreakdown,
    estimate_costs,
    make_config,
    per_day,
    sweep_meshes,
)
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import PARAGON, T3D, ProcessorMesh, Simulator


class TestPerDay:
    def test_scaling(self):
        cfg = make_config("tiny", dt=900.0)
        assert per_day(10.0, 5, cfg) == pytest.approx(2.0 * cfg.steps_per_day())

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            per_day(1.0, 0, make_config("tiny"))


class TestComponentBreakdown:
    @pytest.fixture(scope="class")
    def breakdown(self):
        cfg = make_config("tiny")
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(4, PARAGON).run(agcm_rank_program, cfg, decomp, 8)
        return ComponentBreakdown.from_result(res, 8, cfg)

    def test_components_positive(self, breakdown):
        for key, value in breakdown.as_dict().items():
            if key in ("retry", "checkpoint", "guard", "transpose"):
                # fault/checkpoint/guard phases only appear when injected
                # or supervised, and pillar transposes only on a 3-D
                # mesh — a plain unguarded 2-D run must charge nothing
                assert value == 0.0, key
            else:
                assert value > 0, key

    def test_filtering_within_dynamics(self, breakdown):
        assert breakdown.filtering < breakdown.dynamics

    def test_fractions_bounded(self, breakdown):
        assert 0 < breakdown.dynamics_fraction < 1
        assert 0 < breakdown.filtering_fraction_of_dynamics < 1


class TestAnalyticModel:
    @pytest.mark.parametrize("dims", [(2, 2), (3, 4)])
    @pytest.mark.parametrize("backend", ["convolution-ring", "fft-lb"])
    def test_within_factor_of_simulation(self, dims, backend):
        """The closed-form estimate tracks the simulator to a modest
        factor (it ignores wait-time propagation between phases)."""
        cfg = make_config("tiny", filter_backend=backend)
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg, decomp, 8
        )
        simulated = per_day(res.elapsed, 8, cfg)
        estimate = estimate_costs(cfg, mesh, PARAGON).total
        assert estimate == pytest.approx(simulated, rel=2.0)

    def test_t3d_estimated_faster(self):
        cfg = make_config("2x2.5x9")
        mesh = ProcessorMesh(4, 4)
        p = estimate_costs(cfg, mesh, PARAGON).total
        t = estimate_costs(cfg, mesh, T3D).total
        assert t < p

    def test_more_ranks_less_time(self):
        cfg = make_config("2x2.5x9")
        small = estimate_costs(cfg, ProcessorMesh(2, 2), PARAGON).total
        big = estimate_costs(cfg, ProcessorMesh(8, 8), PARAGON).total
        assert big < small

    def test_lb_estimated_cheaper_filtering(self):
        cfg = make_config("2x2.5x9")
        mesh = ProcessorMesh(8, 8)
        no_lb = estimate_costs(cfg.with_(filter_backend="fft"), mesh, PARAGON)
        lb = estimate_costs(cfg.with_(filter_backend="fft-lb"), mesh, PARAGON)
        assert lb.filtering < no_lb.filtering

    def test_sweep_returns_labelled(self):
        cfg = make_config("2x2.5x9")
        out = sweep_meshes(cfg, [(2, 2), (4, 4)], T3D)
        assert set(out) == {"2 x 2", "4 x 4"}
        assert all(v.total > 0 for v in out.values())

    def test_balanced_physics_estimate_smaller(self):
        cfg = make_config("2x2.5x9")
        mesh = ProcessorMesh(8, 8)
        unbal = estimate_costs(cfg, mesh, PARAGON, physics_imbalance=0.45)
        bal = estimate_costs(cfg, mesh, PARAGON, physics_imbalance=0.06)
        assert bal.physics < unbal.physics
