"""Tests for physical diagnostics and the implicit-diffusion model option."""

import numpy as np
import pytest

from repro.dynamics.state import ModelState
from repro.grid.sphere import SphericalGrid
from repro.model.agcm import AGCM
from repro.model.config import make_config
from repro.model.diagnostics import (
    EnergyBudget,
    energy_budget,
    high_wavenumber_fraction,
    mass_drift,
    moisture_stats,
    zonal_mean,
    zonal_spectrum,
)


@pytest.fixture
def grid():
    return SphericalGrid(12, 16)


class TestEnergyBudget:
    def test_rest_state_zero_energy(self, grid):
        state = ModelState.zeros(12, 16, 2)
        budget = energy_budget(state, grid)
        assert budget.kinetic == 0.0
        assert budget.potential == 0.0
        assert budget.total == 0.0

    def test_components_positive(self, grid):
        state = ModelState.baroclinic_test(grid, 2)
        budget = energy_budget(state, grid)
        assert budget.kinetic > 0
        assert budget.potential > 0

    def test_energy_bounded_during_run(self):
        """No spurious energy source: total energy stays within a small
        factor of its initial value over a short run."""
        model = AGCM(make_config("tiny"))
        model.initialize()
        e0 = energy_budget(model.state, model.grid).total
        model.run(20)
        e1 = energy_budget(model.state, model.grid).total
        assert e1 < 5 * e0 + 1e-12


class TestZonalDiagnostics:
    def test_zonal_mean_shape(self, rng):
        f = rng.standard_normal((5, 8, 3))
        assert zonal_mean(f).shape == (5, 3)

    def test_spectrum_of_pure_wave(self):
        nlon = 16
        field = np.zeros((4, nlon))
        field[2] = np.cos(3 * 2 * np.pi * np.arange(nlon) / nlon)
        spec = zonal_spectrum(field, 2)
        assert spec.argmax() == 3

    def test_high_wavenumber_fraction_bounds(self, rng):
        f = rng.standard_normal((6, 16))
        frac = high_wavenumber_fraction(f, 0)
        assert 0.0 <= frac <= 1.0

    def test_filter_suppresses_polar_short_waves(self):
        """The polar filter strips short-wave variance from the polar
        rows of the *tendencies* (the quantity it is applied to) while
        leaving mid-latitude rows untouched."""
        model = AGCM(make_config("tiny"))
        model.initialize()
        model.run(4)
        tend = model._tendencies(model.state)
        raw = {k: v.copy() for k, v in tend.items()}
        model._filter_tendencies(tend)
        polar = model.grid.nlat - 1
        mid = model.grid.nlat // 2
        before = high_wavenumber_fraction(raw["u"][..., 0], polar)
        after = high_wavenumber_fraction(tend["u"][..., 0], polar)
        assert after < before
        np.testing.assert_allclose(
            tend["u"][mid], raw["u"][mid], atol=1e-14
        )


class TestStatsHelpers:
    def test_moisture_stats(self):
        state = ModelState.zeros(4, 6, 2)
        stats = moisture_stats(state)
        assert stats["negative_fraction"] == 0.0
        assert stats["min"] > 0

    def test_mass_drift(self):
        assert mass_drift([100.0, 100.1]) == pytest.approx(1e-3)
        assert mass_drift([5.0]) == 0.0


class TestImplicitDiffusionOption:
    def test_option_changes_solution(self):
        a = AGCM(make_config("tiny"))
        a.initialize()
        a.run(6)
        b = AGCM(make_config("tiny", vertical_diffusion=5.0))
        b.initialize()
        b.run(6)
        assert not np.allclose(a.state.pt, b.state.pt)
        assert b.is_stable()

    def test_vertical_diffusion_reduces_vertical_contrast(self):
        cfg_off = make_config("tiny")
        cfg_on = make_config("tiny", vertical_diffusion=50.0)
        runs = {}
        for key, cfg in (("off", cfg_off), ("on", cfg_on)):
            m = AGCM(cfg)
            m.initialize()
            m.run(10)
            pt = m.state.pt
            runs[key] = float(np.abs(np.diff(pt, axis=2)).mean())
        assert runs["on"] < runs["off"]

    def test_parallel_equivalence_with_option(self):
        from repro.grid import Decomposition2D
        from repro.model.parallel_agcm import agcm_rank_program
        from repro.parallel import GENERIC, ProcessorMesh, Simulator

        cfg = make_config("tiny", vertical_diffusion=5.0)
        ser = AGCM(cfg)
        ser.initialize()
        ser.run(5)
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        res = Simulator(4, GENERIC).run(agcm_rank_program, cfg, decomp, 5, True)
        for name, want in ser.state.fields().items():
            got = decomp.gather(
                [res.returns[r]["fields"][name] for r in range(4)]
            )
            np.testing.assert_allclose(got, want, atol=1e-10)
