"""Tests for distributed checkpoint/restart."""

import numpy as np
import pytest

from repro.dynamics.state import PROGNOSTIC_NAMES, initial_fields_block
from repro.grid import Decomposition2D
from repro.io.history import HistoryReader
from repro.model.config import make_config
from repro.model.parallel_io import (
    checkpoint_parallel,
    gather_global_fields,
    restart_scatter,
)
from repro.parallel import GENERIC, ProcessorMesh, Simulator


@pytest.fixture
def setup(tiny_config):
    cfg = tiny_config
    mesh = ProcessorMesh(2, 3)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    grid = cfg.make_grid()
    return cfg, mesh, decomp, grid


class TestGather:
    def test_rank0_gets_global_fields(self, setup):
        cfg, mesh, decomp, grid = setup

        def program(ctx):
            sub = decomp.subdomain(ctx.rank)
            local = initial_fields_block(
                grid.lat_rad[sub.lat_slice], grid.lon_rad[sub.lon_slice],
                cfg.nlayers, seed=cfg.seed,
            )
            out = yield from gather_global_fields(ctx, decomp, local)
            return out

        res = Simulator(mesh.size, GENERIC).run(program)
        global_ref = initial_fields_block(
            grid.lat_rad, grid.lon_rad, cfg.nlayers, seed=cfg.seed
        )
        assert res.returns[0] is not None
        for name in PROGNOSTIC_NAMES:
            np.testing.assert_array_equal(
                res.returns[0][name], global_ref[name]
            )
        assert all(res.returns[r] is None for r in range(1, mesh.size))

    def test_gather_charges_full_state_volume(self, setup):
        cfg, mesh, decomp, grid = setup

        def program(ctx):
            sub = decomp.subdomain(ctx.rank)
            local = initial_fields_block(
                grid.lat_rad[sub.lat_slice], grid.lon_rad[sub.lon_slice],
                cfg.nlayers,
            )
            yield from gather_global_fields(ctx, decomp, local)

        res = Simulator(mesh.size, GENERIC).run(program)
        state_bytes = 8 * cfg.nlat * cfg.nlon * (4 * cfg.nlayers + 1)
        non_root = state_bytes * (mesh.size - 1) / mesh.size
        # Tree forwarding moves at least every non-root block once.
        assert res.trace.total_bytes() >= non_root


class TestCheckpointRestart:
    def test_roundtrip(self, setup, tmp_path):
        cfg, mesh, decomp, grid = setup
        path = tmp_path / "ckpt.npz"

        def write_program(ctx):
            sub = decomp.subdomain(ctx.rank)
            local = initial_fields_block(
                grid.lat_rad[sub.lat_slice], grid.lon_rad[sub.lon_slice],
                cfg.nlayers, seed=cfg.seed,
            )
            result = yield from checkpoint_parallel(
                ctx, decomp, cfg, local, time_now=1234.0, path=path
            )
            return result

        res = Simulator(mesh.size, GENERIC).run(write_program)
        assert res.returns[0] is not None
        assert path.exists()

        reader = HistoryReader(path)
        assert reader.last().time == 1234.0

        def read_program(ctx):
            fields, t = yield from restart_scatter(ctx, decomp, path)
            return fields, t

        res2 = Simulator(mesh.size, GENERIC).run(read_program)
        global_ref = initial_fields_block(
            grid.lat_rad, grid.lon_rad, cfg.nlayers, seed=cfg.seed
        )
        for rank in range(mesh.size):
            fields, t = res2.returns[rank]
            assert t == 1234.0
            sub = decomp.subdomain(rank)
            for name in PROGNOSTIC_NAMES:
                np.testing.assert_array_equal(
                    fields[name],
                    global_ref[name][sub.lat_slice, sub.lon_slice],
                )

    def test_checkpoint_synchronises_all_ranks(self, setup, tmp_path):
        cfg, mesh, decomp, grid = setup
        path = tmp_path / "sync.npz"

        def program(ctx):
            sub = decomp.subdomain(ctx.rank)
            local = initial_fields_block(
                grid.lat_rad[sub.lat_slice], grid.lon_rad[sub.lon_slice],
                cfg.nlayers,
            )
            yield from ctx.compute(seconds=1e-3 * ctx.rank)  # skew clocks
            yield from checkpoint_parallel(
                ctx, decomp, cfg, local, 0.0, path
            )
            return ctx.clock

        res = Simulator(mesh.size, GENERIC).run(program)
        # The closing barrier aligns everyone.
        assert max(res.returns) - min(res.returns) < 1e-9
