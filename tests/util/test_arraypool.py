"""Tests for the LRU-bounded scratch array pool."""

import numpy as np
import pytest

from repro.util import arraypool
from repro.util.arraypool import DEFAULT_POOL, ArrayPool


class TestScratch:
    def test_first_request_is_a_miss(self):
        pool = ArrayPool()
        buf = pool.scratch((4, 3))
        assert buf.shape == (4, 3)
        assert buf.dtype == np.dtype(float)
        assert pool.stats() == {"hits": 0, "misses": 1, "entries": 1}

    def test_same_key_returns_same_buffer(self):
        pool = ArrayPool()
        a = pool.scratch((8,), np.float32, tag="halo")
        b = pool.scratch((8,), np.float32, tag="halo")
        assert a is b
        assert pool.hits == 1 and pool.misses == 1

    def test_int_shape_matches_tuple_shape(self):
        pool = ArrayPool()
        a = pool.scratch(5)
        b = pool.scratch((5,))
        assert a is b

    def test_distinct_tags_get_distinct_buffers(self):
        pool = ArrayPool()
        a = pool.scratch((4,), tag="u")
        b = pool.scratch((4,), tag="v")
        assert a is not b
        assert pool.misses == 2
        assert len(pool) == 2

    def test_distinct_dtypes_get_distinct_buffers(self):
        pool = ArrayPool()
        a = pool.scratch((4,), np.float64)
        b = pool.scratch((4,), np.float32)
        assert a is not b
        assert b.dtype == np.dtype(np.float32)

    def test_contents_survive_until_rerequest(self):
        pool = ArrayPool()
        a = pool.scratch((3,))
        a[:] = [1.0, 2.0, 3.0]
        b = pool.scratch((3,))
        np.testing.assert_array_equal(b, [1.0, 2.0, 3.0])


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        pool = ArrayPool(max_entries=2)
        pool.scratch((1,), tag="a")
        pool.scratch((1,), tag="b")
        pool.scratch((1,), tag="a")  # refresh "a"
        pool.scratch((1,), tag="c")  # evicts "b"
        assert ((1,), np.dtype(float).str, "a") in pool
        assert ((1,), np.dtype(float).str, "b") not in pool
        assert ((1,), np.dtype(float).str, "c") in pool
        assert len(pool) == 2

    def test_evicted_key_is_a_fresh_miss(self):
        pool = ArrayPool(max_entries=1)
        a = pool.scratch((2,), tag="a")
        pool.scratch((2,), tag="b")
        c = pool.scratch((2,), tag="a")
        assert c is not a
        assert pool.misses == 3 and pool.hits == 0

    def test_pool_never_exceeds_max_entries(self):
        pool = ArrayPool(max_entries=3)
        for i in range(10):
            pool.scratch((1,), tag=i)
            assert len(pool) <= 3


class TestLifecycle:
    def test_clear_drops_buffers_and_counters(self):
        pool = ArrayPool()
        pool.scratch((2,))
        pool.scratch((2,))
        pool.clear()
        assert pool.stats() == {"hits": 0, "misses": 0, "entries": 0}
        pool.scratch((2,))
        assert pool.misses == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="must be positive"):
            ArrayPool(max_entries=0)
        with pytest.raises(TypeError, match="positive integer"):
            ArrayPool(max_entries=2.5)


class TestModuleLevelPool:
    def test_scratch_uses_default_pool(self):
        before = DEFAULT_POOL.stats()
        tag = ("test", id(self))  # unique key: first call must miss
        arraypool.scratch((2,), tag=tag)
        a = arraypool.scratch((2,), tag=tag)
        after = DEFAULT_POOL.stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1
        assert a is DEFAULT_POOL.scratch((2,), tag=tag)
