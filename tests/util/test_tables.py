"""Tests for the table renderer."""

import pytest

from repro.util.tables import Table, format_seconds, render_tables


class TestFormatSeconds:
    def test_large_values_no_decimals(self):
        assert format_seconds(8702.3) == "8702"

    def test_mid_values_one_decimal(self):
        assert format_seconds(848.52) == "848.5"

    def test_small_values(self):
        assert format_seconds(35.123) == "35.12"
        assert format_seconds(7.4) == "7.400"

    def test_zero(self):
        assert format_seconds(0) == "0"


class TestTable:
    def test_renders_headers_and_rows(self):
        t = Table("Demo", ["a", "bb"])
        t.add_row(1, "x")
        text = t.render()
        assert "Demo" in text
        assert "a" in text and "bb" in text
        assert "x" in text

    def test_float_cells_formatted(self):
        t = Table("T", ["v"])
        t.add_row(1234.5)
        assert "1234" in t.render()

    def test_wrong_cell_count(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_alignment_consistent_width(self):
        t = Table("T", ["col"])
        t.add_row("short")
        t.add_row("a much longer cell")
        lines = t.render().splitlines()
        data_lines = lines[2:]
        assert len({len(line) for line in data_lines}) == 1

    def test_render_tables_joins(self):
        t1 = Table("A", ["x"])
        t2 = Table("B", ["y"])
        out = render_tables([t1, t2])
        assert "A" in out and "B" in out
