"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_positive_int,
    check_shape,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_integral_float(self):
        assert check_positive_int(4.0, "x") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_fraction(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_int("many", "x")


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5

    def test_boundaries_inclusive(self):
        check_in_range(0.0, "x", 0, 1)
        check_in_range(1.0, "x", 0, 1)

    def test_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0, 1)


class TestCheckShape:
    def test_exact(self):
        a = np.zeros((3, 4))
        assert check_shape(a, (3, 4), "a") is a

    def test_wildcard(self):
        check_shape(np.zeros((3, 7)), (3, -1), "a")

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros(3), (3, 1), "a")

    def test_wrong_extent(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros((3, 4)), (3, 5), "a")
