"""Tests for block partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.util.partition import block_bounds, block_partition, owner_of


class TestBlockPartition:
    def test_even_split(self):
        assert block_partition(12, 4) == [3, 3, 3, 3]

    def test_remainder_front_loaded(self):
        assert block_partition(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_items(self):
        assert block_partition(2, 4) == [1, 1, 0, 0]

    def test_zero_items(self):
        assert block_partition(0, 3) == [0, 0, 0]

    def test_single_part(self):
        assert block_partition(7, 1) == [7]

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            block_partition(5, 0)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            block_partition(-1, 2)

    @given(n=st.integers(0, 2000), parts=st.integers(1, 64))
    def test_sizes_sum_and_balance(self, n, parts):
        sizes = block_partition(n, parts)
        assert sum(sizes) == n
        assert len(sizes) == parts
        assert max(sizes) - min(sizes) <= 1
        # Front-loaded: non-increasing.
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestBlockBounds:
    def test_bounds_cover_range(self):
        bounds = block_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    @given(n=st.integers(1, 500), parts=st.integers(1, 32))
    def test_contiguous_cover(self, n, parts):
        bounds = block_bounds(n, parts)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0


class TestExactCoverage:
    """Satellite property: a partition covers the range exactly once."""

    @given(n=st.integers(0, 800), parts=st.integers(1, 48))
    def test_every_index_owned_exactly_once(self, n, parts):
        bounds = block_bounds(n, parts)
        coverage = [0] * n
        for lo, hi in bounds:
            for i in range(lo, hi):
                coverage[i] += 1
        assert all(c == 1 for c in coverage)

    @given(n=st.integers(1, 800), parts=st.integers(1, 48))
    def test_owner_counts_match_partition_sizes(self, n, parts):
        sizes = block_partition(n, parts)
        counts = [0] * parts
        for i in range(n):
            counts[owner_of(i, n, parts)] += 1
        assert counts == sizes

    @given(n=st.integers(0, 800), parts=st.integers(1, 48))
    def test_bounds_and_sizes_agree(self, n, parts):
        sizes = block_partition(n, parts)
        bounds = block_bounds(n, parts)
        assert [hi - lo for lo, hi in bounds] == sizes


class TestOwnerOf:
    @given(n=st.integers(1, 500), parts=st.integers(1, 32),
           data=st.data())
    def test_owner_matches_bounds(self, n, parts, data):
        index = data.draw(st.integers(0, n - 1))
        owner = owner_of(index, n, parts)
        lo, hi = block_bounds(n, parts)[owner]
        assert lo <= index < hi

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            owner_of(10, 10, 3)
        with pytest.raises(IndexError):
            owner_of(-1, 10, 3)
