"""Ingestor: cache walks, bench round-trips, SLO dumps — idempotently.

The fixtures build a real ResultCache and real trajectory files in
tmp_path; nothing here unpickles payloads or shells out, so it all
stays tier 1.
"""

from __future__ import annotations

import json
import os

from repro.campaign.cache import ResultCache, cache_key
from repro.results.db import ResultsDB
from repro.results.ingest import (
    BENCH_IDENT,
    SLO_IDENT,
    Ingestor,
    bench_entry_key,
)
from repro.results.queries import trajectory_from_db
from repro.verify import bench_record

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _seed_cache(tmp_path, n=3):
    cache = ResultCache(str(tmp_path / "cache"))
    keys = []
    for i in range(n):
        params = {"seconds": 0.01, "tag": chr(ord("a") + i)}
        key = cache_key("sleep", params, "v1")
        cache.put(key, {"i": i}, meta={
            "ident": "sleep", "point": f"0.01#{chr(ord('a') + i)}",
            "params": params, "duration": 0.5 + i, "worker": 0,
        })
        keys.append(key)
    return cache, keys


def _bench_entry(ts="2026-08-08T00:00:00+00:00", label="t"):
    return {
        "schema_version": bench_record.SCHEMA_VERSION,
        "timestamp": ts,
        "label": label,
        "machine": "test",
        "config": {"grid": "tiny"},
        "metrics": {"filter_speedup_fft_vs_direct": 3.0,
                    "total_speedup": 1.4},
        "tracked_ratios": ["filter_speedup_fft_vs_direct",
                           "total_speedup"],
    }


class TestCacheIngest:
    def test_cold_ingest_adds_every_entry(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        with ResultsDB(str(tmp_path / "i.db")) as db:
            stats = Ingestor(db, git_sha="abc123").ingest_cache_dir(
                str(tmp_path / "cache"))
            assert (stats.scanned, stats.added, stats.skipped) == (3, 3, 0)
            assert stats.errors == []
            assert db.run_keys() == set(keys)
            # Provenance, duration metric and payload artifact all land.
            cols, rows = db.query(
                "SELECT git_sha, source, status FROM runs")
            assert set(rows) == {("abc123", "campaign", "ran")}
            assert db.metrics_for(keys[1]) == {"duration_seconds": 1.5}
            cols, rows = db.query(
                "SELECT sha256, bytes FROM artifacts")
            for sha, nbytes in rows:
                assert len(sha) == 64 and nbytes > 0

    def test_reingest_adds_zero_rows(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        with ResultsDB(str(tmp_path / "i.db")) as db:
            ing = Ingestor(db, git_sha="")
            ing.ingest_cache_dir(str(tmp_path / "cache"))
            stats = ing.ingest_cache_dir(str(tmp_path / "cache"))
            assert (stats.added, stats.skipped) == (0, 3)
            assert len(db) == 3

    def test_legacy_sidecar_without_provenance(self, tmp_path):
        """Entries written before put-time stamping still ingest: bytes
        come from the payload file, the hash from re-hashing it."""
        cache, keys = _seed_cache(tmp_path, n=1)
        pkl, sidecar = cache._paths(keys[0])
        meta = json.load(open(sidecar))
        for field in ("created_at", "bytes", "result_sha256"):
            meta.pop(field, None)
        with open(sidecar, "w") as fh:
            json.dump(meta, fh)
        with ResultsDB(str(tmp_path / "i.db")) as db:
            stats = Ingestor(db, git_sha="").ingest_cache_dir(
                str(tmp_path / "cache"))
            assert stats.added == 1 and stats.errors == []
            cols, rows = db.query(
                "SELECT sha256, bytes FROM artifacts")
            assert len(rows[0][0]) == 64
            assert rows[0][1] == os.path.getsize(pkl)

    def test_serve_written_entries_keep_their_source(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache_key("sleep", {"seconds": 0.01, "tag": "s"}, "v1")
        cache.put(key, 1, meta={"ident": "sleep", "point": "0.01#s",
                                "worker": "serve"})
        with ResultsDB(str(tmp_path / "i.db")) as db:
            Ingestor(db, git_sha="").ingest_cache_dir(
                str(tmp_path / "cache"))
            cols, rows = db.query("SELECT source FROM runs")
            assert rows == [("serve",)]

    def test_missing_dir_is_an_error_not_a_crash(self, tmp_path):
        with ResultsDB(str(tmp_path / "i.db")) as db:
            stats = Ingestor(db, git_sha="").ingest_cache_dir(
                str(tmp_path / "nope"))
            assert stats.errors and stats.added == 0


class TestBenchIngest:
    def test_entry_key_is_content_addressed(self):
        e1, e2 = _bench_entry(), _bench_entry()
        assert bench_entry_key(e1) == bench_entry_key(e2)
        e2["metrics"]["total_speedup"] = 9.9
        assert bench_entry_key(e1) != bench_entry_key(e2)
        assert bench_entry_key(e1).startswith("bench:")

    def test_repo_trajectory_round_trips_losslessly(self, tmp_path):
        """Acceptance: every gated metric of every BENCH_agcm.json entry
        survives ingest → trajectory_from_db verbatim."""
        path = os.path.join(_REPO_ROOT, "BENCH_agcm.json")
        traj = bench_record.load_trajectory(path)
        assert traj["entries"], "repo trajectory unexpectedly empty"
        db_path = str(tmp_path / "i.db")
        with ResultsDB(db_path) as db:
            stats = Ingestor(db, git_sha="").ingest_bench_file(path)
            assert stats.added == len(traj["entries"])
            assert stats.errors == []
        rebuilt = trajectory_from_db(db_path)
        assert rebuilt["schema_version"] == traj["schema_version"]
        assert rebuilt["benchmark"] == traj["benchmark"]
        assert len(rebuilt["entries"]) == len(traj["entries"])
        for got, want in zip(rebuilt["entries"], traj["entries"]):
            assert got["timestamp"] == want["timestamp"]
            assert got["metrics"] == want["metrics"]
            assert got["tracked_ratios"] == want.get("tracked_ratios", [])
            assert got["config"] == want.get("config", {})
            assert got["label"] == want.get("label", "")

    def test_reingest_bench_is_idempotent(self, tmp_path):
        path = os.path.join(_REPO_ROOT, "BENCH_agcm.json")
        with ResultsDB(str(tmp_path / "i.db")) as db:
            ing = Ingestor(db, git_sha="")
            first = ing.ingest_bench_file(path)
            second = ing.ingest_bench_file(path)
            assert second.added == 0
            assert second.skipped == first.added
            assert len(db) == first.added

    def test_bench_rows_never_pin_cache_entries(self, tmp_path):
        with ResultsDB(str(tmp_path / "i.db")) as db:
            Ingestor(db, git_sha="").ingest_bench_entry(_bench_entry())
            assert db.cache_keys() == set()
            cols, rows = db.query("SELECT ident, status FROM runs")
            assert rows == [(BENCH_IDENT, "recorded")]

    def test_invalid_trajectory_reports_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "schema_version": bench_record.SCHEMA_VERSION,
            "benchmark": "x",
            "entries": [{"timestamp": "t"}],  # missing metrics
        }))
        with ResultsDB(str(tmp_path / "i.db")) as db:
            stats = Ingestor(db, git_sha="").ingest_bench_file(str(bad))
            assert stats.errors and stats.added == 0


class TestServeSloIngest:
    def _slo_doc(self):
        return {
            "cold": {"coalesce_rate": 0.8, "requests": 100,
                     "wall_seconds": 2.5, "failures": 0},
            "warm": {"hit_rate": 0.99, "wall_seconds": 0.5,
                     "throughput_rps": 200.0, "failures": 1,
                     "latency_us": {"hit": {"p99": 850.0}}},
        }

    def test_slo_dump_lands_as_one_run(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(self._slo_doc()))
        with ResultsDB(str(tmp_path / "i.db")) as db:
            stats = Ingestor(db, git_sha="").ingest_serve_slo(str(path))
            assert (stats.added, stats.errors) == (1, [])
            cols, rows = db.query("SELECT ident, source FROM runs")
            assert rows == [(SLO_IDENT, "serve")]
            key = next(iter(db.run_keys()))
            metrics = db.metrics_for(key)
            assert metrics["serve_coalesce_rate"] == 0.8
            assert metrics["serve_warm_hit_rate"] == 0.99
            assert metrics["serve_failed_requests"] == 1.0
            assert metrics["serve_warm_hit_p99_us"] == 850.0

    def test_reingest_slo_is_idempotent(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(self._slo_doc()))
        with ResultsDB(str(tmp_path / "i.db")) as db:
            ing = Ingestor(db, git_sha="")
            ing.ingest_serve_slo(str(path))
            stats = ing.ingest_serve_slo(str(path))
            assert (stats.added, stats.skipped) == (0, 1)

    def test_non_slo_json_is_rejected_with_hint(self, tmp_path):
        path = tmp_path / "notslo.json"
        path.write_text(json.dumps({"hello": 1}))
        with ResultsDB(str(tmp_path / "i.db")) as db:
            stats = Ingestor(db, git_sha="").ingest_serve_slo(str(path))
            assert stats.added == 0
            assert "cold" in stats.errors[0]


class TestProvenance:
    def test_explicit_sha_wins(self, tmp_path):
        with ResultsDB(str(tmp_path / "i.db")) as db:
            ing = Ingestor(db, git_sha="deadbeef")
            assert ing.git_sha == "deadbeef"

    def test_empty_string_means_unstamped(self, tmp_path):
        with ResultsDB(str(tmp_path / "i.db")) as db:
            assert Ingestor(db, git_sha="").git_sha is None

    def test_env_var_override(self, tmp_path, monkeypatch):
        from repro.results.provenance import current_git_sha

        monkeypatch.setenv("REPRO_GIT_SHA", "cafe01")
        assert current_git_sha() == "cafe01"
