"""Canned reports and the ``results`` CLI front end.

The CLI is exercised through :func:`repro.results.cli.main` with
explicit argv — no subprocesses, so these stay tier 1.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.results.cli import main as results_main
from repro.results.db import ResultsDB
from repro.results.ingest import Ingestor
from repro.results.queries import (
    experiment_rollup,
    run_query,
    runs_report,
    trajectory_from_db,
)

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
_BENCH = os.path.join(_REPO_ROOT, "BENCH_agcm.json")


@pytest.fixture
def seeded_db(tmp_path):
    path = str(tmp_path / "i.db")
    with ResultsDB(path) as db:
        db.record_run(run_key="a", source="campaign", ident="sleep",
                      point="0.01#a", cache_key="a", git_sha="s1",
                      created_at="2026-08-01T00:00:00+00:00",
                      metrics={"duration_seconds": (0.5, "s")})
        db.record_run(run_key="b", source="campaign", ident="sleep",
                      point="0.01#b", cache_key="b", status="failed",
                      metrics={"duration_seconds": (1.5, "s")})
        db.record_run(run_key="c", source="serve", ident="table8",
                      point="4x4", cache_key="c",
                      metrics={"duration_seconds": (2.0, "s")})
        db.record_hit("a")
        db.record_hit("a")
    return path


class TestCannedReports:
    def test_rollup_counts_and_extremes(self, seeded_db):
        roll = experiment_rollup(seeded_db)
        assert roll["sleep"]["runs"] == 2
        assert roll["sleep"]["failed"] == 1
        assert roll["sleep"]["cache_hits"] == 2
        assert roll["sleep"]["best_seconds"] == 0.5
        assert roll["sleep"]["worst_seconds"] == 1.5
        assert roll["table8"]["runs"] == 1

    def test_runs_report_filters(self, seeded_db):
        tables, doc = runs_report(seeded_db, ident="sleep")
        assert len(doc["runs"]) == 2
        assert {r["ident"] for r in doc["runs"]} == {"sleep"}
        tables, doc = runs_report(seeded_db, source="serve")
        assert [r["ident"] for r in doc["runs"]] == ["table8"]
        rendered = tables[0].render()
        assert "table8" in rendered and "4x4" in rendered

    def test_run_query_binds_params(self, seeded_db):
        cols, rows = run_query(
            seeded_db,
            "SELECT point FROM runs WHERE ident = ? ORDER BY point",
            ("sleep",),
        )
        assert rows == [("0.01#a",), ("0.01#b",)]

    def test_trajectory_from_empty_db_is_none(self, seeded_db):
        assert trajectory_from_db(seeded_db) is None

    def test_trajectory_from_missing_db_is_none(self, tmp_path):
        assert trajectory_from_db(str(tmp_path / "absent.db")) is None


class TestCli:
    def test_missing_db_exits_2_with_hint(self, tmp_path, capsys):
        rc = results_main(["runs", "--db", str(tmp_path / "none.db")])
        assert rc == 2
        assert "--results-db" in capsys.readouterr().err

    def test_ingest_without_sources_exits_2(self, tmp_path, capsys):
        rc = results_main(["ingest", "--db", str(tmp_path / "i.db")])
        assert rc == 2
        assert "nothing to ingest" in capsys.readouterr().err

    def test_ingest_then_runs_and_query(self, tmp_path, capsys):
        db = str(tmp_path / "i.db")
        rc = results_main(["ingest", "--db", db, "--bench", _BENCH,
                           "--git-sha", "t1", "--json"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["runs_indexed"] > 0
        assert stats["sources"][0]["added"] == stats["runs_indexed"]

        rc = results_main(["runs", "--db", db, "--source", "bench"])
        assert rc == 0
        assert "bench:agcm" in capsys.readouterr().out

        rc = results_main([
            "query", "SELECT COUNT(*) AS n FROM runs WHERE source = ?",
            "--db", db, "--param", "bench", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)[0]["n"] \
            == stats["runs_indexed"]

    def test_query_cannot_write(self, tmp_path, capsys):
        db = str(tmp_path / "i.db")
        with ResultsDB(db) as handle:
            handle.record_run(run_key="k", source="campaign", ident="x")
        rc = results_main(["query", "DELETE FROM runs", "--db", db])
        assert rc == 2
        assert "readonly" in capsys.readouterr().err
        with ResultsDB(db) as handle:
            assert len(handle) == 1

    def test_trajectory_renders_tracked_ratios(self, tmp_path, capsys):
        db = str(tmp_path / "i.db")
        with ResultsDB(db) as handle:
            Ingestor(handle, git_sha="").ingest_bench_file(_BENCH)
        rc = results_main(["trajectory", "--db", db, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        from repro.verify import bench_record

        traj = bench_record.load_trajectory(_BENCH)
        assert len(doc["entries"]) == len(traj["entries"])
        # Every gated metric of the newest JSON entry is reproduced.
        newest = traj["entries"][-1]
        for name in newest["tracked_ratios"]:
            assert doc["entries"][-1]["values"][name] \
                == newest["metrics"][name]

    def test_trajectory_without_bench_rows_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "i.db")
        with ResultsDB(db) as handle:
            handle.record_run(run_key="k", source="campaign", ident="x")
        rc = results_main(["trajectory", "--db", db])
        assert rc == 2
        assert "no bench entries" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self, capsys):
        assert results_main(["frobnicate"]) == 2
