"""Live recording hooks: campaign and gateway runs land in the index.

The campaign end-to-end tests drive the serial scheduler with synthetic
sleep units (cheap, deterministic) — the same acceptance comparison the
CI smoke job makes: index counts must equal the CampaignReport's.
"""

from __future__ import annotations

import pytest

from repro.campaign import run_campaign
from repro.campaign.cache import ResultCache
from repro.campaign.report import UnitOutcome
from repro.campaign.units import enumerate_units
from repro.results.db import ResultsDB
from repro.results.hooks import (
    record_campaign_outcomes,
    record_unit_execution,
    record_unit_hit,
)
from repro.results.queries import experiment_rollup

FAST = ["sleep:0.01#a", "sleep:0.01#b", "sleep:0.01#c"]


class TestCampaignRecording:
    def test_cold_run_matches_report(self, tmp_path):
        db_path = str(tmp_path / "i.db")
        report = run_campaign(FAST, cache_dir=str(tmp_path / "cache"),
                              results_db=db_path)
        with ResultsDB(db_path) as db:
            assert len(db) == report.units_total
            cols, rows = db.query(
                "SELECT status, hits, git_sha FROM runs")
        assert all(status == "ran" for status, _, _ in rows)
        assert sum(hits for _, hits, _ in rows) == report.cache_hits == 0
        roll = experiment_rollup(db_path)
        assert roll["sleep"]["runs"] == report.units_total
        assert roll["sleep"]["failed"] == report.failures == 0

    def test_warm_rerun_adds_no_rows_only_hits(self, tmp_path):
        db_path = str(tmp_path / "i.db")
        run_campaign(FAST, cache_dir=str(tmp_path / "cache"),
                     results_db=db_path)
        report = run_campaign(FAST, cache_dir=str(tmp_path / "cache"),
                              results_db=db_path)
        assert report.cache_hits == len(FAST)
        with ResultsDB(db_path) as db:
            assert len(db) == len(FAST)
        roll = experiment_rollup(db_path)
        assert roll["sleep"]["cache_hits"] == len(FAST)

    def test_hit_against_unindexed_cache_backfills(self, tmp_path):
        """Cache warmed before the index existed: the first recorded
        hit creates the row from the sidecar, then counts itself."""
        run_campaign(FAST[:1], cache_dir=str(tmp_path / "cache"))
        db_path = str(tmp_path / "i.db")
        run_campaign(FAST[:1], cache_dir=str(tmp_path / "cache"),
                     results_db=db_path)
        roll = experiment_rollup(db_path)
        assert roll["sleep"]["runs"] == 1
        assert roll["sleep"]["cache_hits"] == 1

    def test_failed_then_ran_upgrades(self, tmp_path):
        db_path = str(tmp_path / "i.db")
        failed = UnitOutcome(ident="x", label="x@p", key="k1",
                             status="failed", worker=0, seconds=0.1,
                             compute_seconds=0.1, error="boom")
        record_campaign_outcomes(db_path, [failed], git_sha="s")
        with ResultsDB(db_path) as db:
            assert db.query("SELECT status FROM runs")[1] == [("failed",)]
        ran = UnitOutcome(ident="x", label="x@p", key="k1",
                          status="ran", worker=0, seconds=0.2,
                          compute_seconds=0.2)
        record_campaign_outcomes(db_path, [ran], git_sha="s")
        with ResultsDB(db_path) as db:
            assert db.query("SELECT status FROM runs")[1] == [("ran",)]
            assert len(db) == 1

    def test_recording_is_opt_in(self, tmp_path):
        report = run_campaign(FAST, cache_dir=str(tmp_path / "cache"))
        assert report.failures == 0
        assert not (tmp_path / ".repro-results.db").exists()


class TestServeRecording:
    @pytest.fixture
    def unit_and_cache(self, tmp_path):
        unit = enumerate_units(["sleep:0.01#s"])[0]
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(unit.key, {"ok": 1}, meta={
            "ident": unit.ident, "point": unit.point.label,
            "worker": "serve", "duration": 0.01,
        })
        return unit, cache

    def test_execution_then_hit(self, tmp_path, unit_and_cache):
        unit, cache = unit_and_cache
        db_path = str(tmp_path / "i.db")
        record_unit_execution(db_path, unit, 0.01, cache, git_sha="g1")
        record_unit_hit(db_path, unit, cache, git_sha="g1")
        with ResultsDB(db_path) as db:
            cols, rows = db.query(
                "SELECT source, status, hits, git_sha FROM runs")
            assert rows == [("serve", "ran", 1, "g1")]
            assert db.metrics_for(unit.key)["duration_seconds"] == 0.01

    def test_hit_without_prior_row_backfills_from_sidecar(
            self, tmp_path, unit_and_cache):
        unit, cache = unit_and_cache
        db_path = str(tmp_path / "i.db")
        record_unit_hit(db_path, unit, cache, git_sha=None)
        with ResultsDB(db_path) as db:
            cols, rows = db.query("SELECT source, hits FROM runs")
            # Sidecar says worker == "serve", so the backfilled row
            # keeps its true origin.
            assert rows == [("serve", 1)]
