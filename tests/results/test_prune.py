"""prune_cache: manifest/index references and age both pin entries."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.cache import ResultCache
from repro.results.cli import main as results_main
from repro.results.db import ResultsDB
from repro.results.prune import prune_cache


def _stale(cache: ResultCache, key: str) -> None:
    """Rewrite the sidecar's created_at so the entry looks old."""
    _, sidecar = cache._paths(key)
    meta = json.load(open(sidecar))
    meta["created_at"] = "2020-01-01T00:00:00+00:00"
    with open(sidecar, "w") as fh:
        json.dump(meta, fh)


@pytest.fixture
def cache(tmp_path):
    c = ResultCache(str(tmp_path / "cache"))
    for key in ("aa" * 32, "bb" * 32, "cc" * 32):
        c.put(key, {"k": key}, meta={"ident": "sleep", "point": key[:2]})
        _stale(c, key)
    return c


class TestPrune:
    def test_manifest_reference_pins(self, cache):
        cache.write_manifest({"units": [{"key": "aa" * 32}]})
        report = prune_cache(cache.root, older_than_days=30)
        assert {c.key for c in report.removed} == {"bb" * 32, "cc" * 32}
        assert report.kept == 1
        assert cache.get("aa" * 32) is not None
        assert cache.get("bb" * 32) is None

    def test_index_reference_pins(self, cache, tmp_path):
        db_path = str(tmp_path / "i.db")
        with ResultsDB(db_path) as db:
            db.record_run(run_key="bb" * 32, source="campaign",
                          ident="sleep", cache_key="bb" * 32)
        report = prune_cache(cache.root, older_than_days=30,
                             db_path=db_path)
        assert {c.key for c in report.removed} == {"aa" * 32, "cc" * 32}
        assert cache.get("bb" * 32) is not None

    def test_young_entries_survive(self, cache):
        # Re-put one entry so its created_at is now.
        cache.put("cc" * 32, 1, meta={"ident": "sleep"})
        report = prune_cache(cache.root, older_than_days=30)
        assert "cc" * 32 not in {c.key for c in report.removed}
        assert len(report.removed) == 2

    def test_dry_run_deletes_nothing(self, cache):
        report = prune_cache(cache.root, older_than_days=0, dry_run=True)
        assert report.dry_run and len(report.removed) == 3
        assert report.removed_bytes > 0
        assert sorted(cache.keys()) == sorted(
            ("aa" * 32, "bb" * 32, "cc" * 32))

    def test_negative_days_rejected(self, cache):
        with pytest.raises(ValueError, match=">= 0"):
            prune_cache(cache.root, older_than_days=-1)

    def test_missing_dir_is_reported(self, tmp_path):
        report = prune_cache(str(tmp_path / "nope"), older_than_days=1)
        assert report.errors and not report.removed

    def test_removed_sidecars_go_too(self, cache):
        prune_cache(cache.root, older_than_days=0)
        pkl, sidecar = cache._paths("aa" * 32)
        assert not os.path.exists(pkl) and not os.path.exists(sidecar)


class TestPruneCli:
    def test_cli_dry_run_and_json(self, cache, capsys):
        rc = results_main(["prune", "--cache-dir", cache.root,
                           "--older-than", "0", "--dry-run", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["dry_run"] is True and len(doc["removed"]) == 3

    def test_cli_negative_days_exits_2(self, cache, capsys):
        rc = results_main(["prune", "--cache-dir", cache.root,
                           "--older-than", "-3"])
        assert rc == 2
