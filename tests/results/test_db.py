"""ResultsDB: schema, idempotent inserts, hit/ran upgrades, read-only.

Everything here is pure sqlite on tmp_path — fast, tier 1.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.results.db import SOURCES, ResultsDB, open_readonly


def _db(tmp_path) -> str:
    return str(tmp_path / "index.db")


class TestRecordRun:
    def test_new_run_returns_true(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            assert db.record_run(run_key="k1", source="campaign",
                                 ident="table8") is True
            assert len(db) == 1

    def test_duplicate_key_is_ignored(self, tmp_path):
        """Idempotency: re-recording the same key adds nothing and
        leaves the original row untouched."""
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="k1", source="campaign", ident="table8",
                          point="4x4", metrics={"duration_seconds": 1.5})
            assert db.record_run(run_key="k1", source="serve",
                                 ident="other") is False
            assert len(db) == 1
            cols, rows = db.query(
                "SELECT source, ident FROM runs WHERE run_key = 'k1'"
            )
            assert rows == [("campaign", "table8")]
            assert db.metrics_for("k1") == {"duration_seconds": 1.5}

    def test_unknown_source_rejected(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            with pytest.raises(ValueError, match="unknown source"):
                db.record_run(run_key="k", source="nonsense", ident="x")

    def test_sources_cover_all_ingest_paths(self):
        assert set(SOURCES) == {"campaign", "serve", "bench", "api"}

    def test_metric_units_and_plain_values(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(
                run_key="k", source="bench", ident="bench:agcm",
                metrics={"ratio": 1.25, "duration_seconds": (2.0, "s")},
            )
            cols, rows = db.query(
                "SELECT name, value, unit FROM metrics ORDER BY name"
            )
            assert rows == [("duration_seconds", 2.0, "s"),
                            ("ratio", 1.25, "")]

    def test_artifacts_recorded(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(
                run_key="k", source="campaign", ident="x",
                artifacts=[("/tmp/x.pkl", "ab" * 32, 123)],
            )
            cols, rows = db.query(
                "SELECT path, sha256, bytes FROM artifacts"
            )
            assert rows == [("/tmp/x.pkl", "ab" * 32, 123)]

    def test_params_json_is_canonical(self, tmp_path):
        """Params serialize sorted/compact so equal dicts hash equal."""
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="k", source="campaign", ident="x",
                          params={"b": 2, "a": 1})
            cols, rows = db.query("SELECT params_json FROM runs")
            assert rows[0][0] == '{"a":1,"b":2}'
            assert json.loads(rows[0][0]) == {"a": 1, "b": 2}


class TestHitAndUpgrade:
    def test_record_hit_bumps_counter(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="k", source="campaign", ident="x")
            assert db.record_hit("k") is True
            assert db.record_hit("k") is True
            cols, rows = db.query("SELECT hits FROM runs")
            assert rows == [(2,)]

    def test_record_hit_missing_key_is_false(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            assert db.record_hit("nope") is False

    def test_mark_ran_upgrades_failed(self, tmp_path):
        """A unit that failed, then succeeded on retry, ends as ran."""
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="k", source="campaign", ident="x",
                          status="failed")
            db.mark_ran("k")
            cols, rows = db.query("SELECT status FROM runs")
            assert rows == [("ran",)]

    def test_mark_ran_leaves_other_statuses(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="k", source="bench", ident="x",
                          status="recorded")
            db.mark_ran("k")
            cols, rows = db.query("SELECT status FROM runs")
            assert rows == [("recorded",)]


class TestKeySets:
    def test_run_and_cache_keys(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="a", source="campaign", ident="x",
                          cache_key="a")
            db.record_run(run_key="bench:b", source="bench", ident="y")
            assert db.run_keys() == {"a", "bench:b"}
            # bench rows have no cache entry, so they never pin one.
            assert db.cache_keys() == {"a"}


class TestReadOnly:
    def test_writes_blocked(self, tmp_path):
        path = _db(tmp_path)
        with ResultsDB(path) as db:
            db.record_run(run_key="k", source="campaign", ident="x")
        conn = open_readonly(path)
        try:
            with pytest.raises(sqlite3.OperationalError):
                conn.execute("DELETE FROM runs")
            with pytest.raises(sqlite3.OperationalError):
                conn.execute("INSERT INTO runs (run_key, source, ident) "
                             "VALUES ('z', 'campaign', 'x')")
            # Reads still work on the same connection.
            assert conn.execute("SELECT COUNT(*) FROM runs").fetchone() \
                == (1,)
        finally:
            conn.close()

    def test_reopen_preserves_rows(self, tmp_path):
        path = _db(tmp_path)
        with ResultsDB(path) as db:
            db.record_run(run_key="k", source="campaign", ident="x")
        with ResultsDB(path) as db:
            assert len(db) == 1
            assert db.record_run(run_key="k", source="campaign",
                                 ident="x") is False

    def test_foreign_keys_cascade(self, tmp_path):
        with ResultsDB(_db(tmp_path)) as db:
            db.record_run(run_key="k", source="campaign", ident="x",
                          metrics={"m": 1.0},
                          artifacts=[("p", None, None)])
            db._conn.execute("DELETE FROM runs")
            db._conn.commit()
            assert db.query("SELECT * FROM metrics")[1] == []
            assert db.query("SELECT * FROM artifacts")[1] == []
