"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import Decomposition2D, SphericalGrid
from repro.model import make_config
from repro.parallel import GENERIC, PARAGON, T3D, ProcessorMesh


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid() -> SphericalGrid:
    """An 18 x 24 grid: small but large enough for both polar filters."""
    return SphericalGrid(nlat=18, nlon=24)


@pytest.fixture
def paper_grid() -> SphericalGrid:
    """The paper's 2 x 2.5 degree grid (90 x 144)."""
    return SphericalGrid(nlat=90, nlon=144)


@pytest.fixture
def tiny_config():
    """The tiny AGCM preset used by the integration tests."""
    return make_config("tiny")


@pytest.fixture(params=[(1, 1), (2, 3), (3, 4)], ids=lambda d: f"mesh{d[0]}x{d[1]}")
def small_mesh(request) -> ProcessorMesh:
    """A selection of processor meshes (including uneven decompositions)."""
    return ProcessorMesh(*request.param)


@pytest.fixture
def generic_machine():
    return GENERIC


@pytest.fixture
def paragon():
    return PARAGON


@pytest.fixture
def t3d():
    return T3D
