"""Scheduler integration: fault plans drive the discrete-event machine."""

import numpy as np
import pytest

from repro.faults import FaultPlan, LinkFault, RankFailure, SlowdownWindow
from repro.parallel import (
    Compute,
    DeadlockError,
    GENERIC,
    RankFailedError,
    Recv,
    Send,
    Simulator,
)
from repro.verify.invariants import assert_sim_invariants


def _pingpong(ctx):
    """Rank 0 <-> rank 1 message exchange, other ranks idle."""
    data = np.arange(64, dtype=np.float64) + ctx.rank
    if ctx.rank == 0:
        yield Send(dest=1, payload=data, tag=1)
        got = yield Recv(source=1, tag=2)
    elif ctx.rank == 1:
        got = yield Recv(source=0, tag=1)
        yield Send(dest=0, payload=data, tag=2)
    else:
        got = None
    return None if got is None else float(got.sum())


class TestSlowdowns:
    def test_compute_stretches_only_in_window(self):
        def program(ctx):
            yield Compute(seconds=1.0)
            yield Compute(seconds=1.0)

        plan = FaultPlan(
            seed=0, slowdowns=(SlowdownWindow(rank=1, t0=0.0, t1=3.0, factor=3.0),)
        )
        res = Simulator(2, GENERIC, faults=plan).run(program)
        assert res.clocks[0] == pytest.approx(2.0)
        # first compute fills the window exactly (3x slow), the second
        # starts at t=3 — outside the half-open window — at full speed
        assert res.clocks[1] == pytest.approx(4.0)

    def test_clock_identity_still_holds(self):
        def program(ctx):
            yield Compute(seconds=0.5)

        plan = FaultPlan(
            seed=0, slowdowns=(SlowdownWindow(0, 0.0, 10.0, 2.0),)
        )
        res = Simulator(3, GENERIC, faults=plan, record_events=True).run(program)
        assert_sim_invariants(res)


class TestDropsAndRetries:
    def test_retry_accounting_and_conservation(self):
        plan = FaultPlan(seed=2, link_faults=(LinkFault(drop_rate=0.5),))
        found = False
        for seed in range(2, 12):
            plan = FaultPlan(
                seed=seed, link_faults=(LinkFault(drop_rate=0.5),)
            )
            res = Simulator(2, GENERIC, faults=plan, record_events=True).run(
                _pingpong
            )
            assert_sim_invariants(res)
            tr = res.trace
            drops = sum(r.messages_dropped for r in tr.ranks)
            retrans = sum(r.messages_retransmitted for r in tr.ranks)
            assert drops == retrans
            if drops:
                found = True
                assert "retry" in tr.phase_elapsed
                break
        assert found, "no drop in 10 seeds at 50% drop rate"

    def test_payload_survives_drops(self):
        plan = FaultPlan(seed=3, link_faults=(LinkFault(drop_rate=0.9),))
        res = Simulator(2, GENERIC, faults=plan).run(_pingpong)
        clean = Simulator(2, GENERIC).run(_pingpong)
        assert res.returns[0] == clean.returns[0]
        assert res.returns[1] == clean.returns[1]

    def test_drops_delay_but_preserve_determinism(self):
        plan = FaultPlan(seed=4, link_faults=(LinkFault(drop_rate=0.7),))
        a = Simulator(2, GENERIC, faults=plan, record_events=True).run(_pingpong)
        b = Simulator(2, GENERIC, faults=plan, record_events=True).run(_pingpong)
        assert a.clocks == b.clocks
        assert a.trace.events == b.trace.events
        clean = Simulator(2, GENERIC).run(_pingpong)
        assert a.elapsed >= clean.elapsed

    def test_undroppable_messages_exempt(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, payload=1.0, tag=0, droppable=False)
            else:
                yield Recv(source=0, tag=0)

        plan = FaultPlan(seed=0, link_faults=(LinkFault(drop_rate=0.999),))
        res = Simulator(2, GENERIC, faults=plan).run(program)
        assert sum(r.messages_dropped for r in res.trace.ranks) == 0


class TestFailures:
    def test_stop_mode_raises_at_boundary(self):
        def program(ctx):
            for _ in range(10):
                yield Compute(seconds=0.1)

        plan = FaultPlan(seed=0, failures=(RankFailure(rank=1, at=0.35),))
        with pytest.raises(RankFailedError) as exc:
            Simulator(3, GENERIC, faults=plan).run(program)
        assert exc.value.rank == 1
        # detected at the first op boundary at or after t=0.35
        assert exc.value.at == pytest.approx(0.4)

    def test_hang_mode_deadlocks_peers(self):
        def program(ctx):
            yield Compute(seconds=0.5)
            if ctx.rank == 0:
                yield Recv(source=1, tag=7)
            else:
                yield Send(dest=0, payload=1, tag=7)

        plan = FaultPlan(
            seed=0, failures=(RankFailure(rank=1, at=0.1, mode="hang"),)
        )
        with pytest.raises(DeadlockError, match="failed \\(hang\\)"):
            Simulator(2, GENERIC, faults=plan).run(program)

    def test_without_failure_lets_run_complete(self):
        def program(ctx):
            yield Compute(seconds=1.0)
            return ctx.rank

        plan = FaultPlan(seed=0, failures=(RankFailure(rank=0, at=0.5),))
        res = Simulator(2, GENERIC, faults=plan.without_failure(0)).run(program)
        assert res.returns == [0, 1]
