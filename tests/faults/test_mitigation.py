"""Straggler mitigation: load estimation math and the end-to-end demo."""

import numpy as np
import pytest

from repro.faults import (
    LoadMeasurement,
    estimate_rank_loads,
    physics_imbalance,
    run_straggler_demo,
)


class TestEstimateRankLoads:
    def test_uniform_rates(self):
        m = [LoadMeasurement(1.0, 10, 10), LoadMeasurement(2.0, 20, 20)]
        loads = estimate_rank_loads(m)
        # identical per-column rate (0.1 s/col) scaled by owned columns
        np.testing.assert_allclose(loads, [1.0, 2.0])

    def test_straggler_rate_dominates(self):
        m = [LoadMeasurement(1.0, 10, 10), LoadMeasurement(3.0, 10, 10)]
        loads = estimate_rank_loads(m)
        assert loads[1] == pytest.approx(3.0 * loads[0] / 1.0)

    def test_load_follows_owned_not_held(self):
        # rank 0 held guest columns last step (held=20) but owns only 10:
        # its projected load uses the measured *rate*, not the held count
        m = [LoadMeasurement(2.0, 20, 10), LoadMeasurement(1.0, 10, 10)]
        loads = estimate_rank_loads(m)
        np.testing.assert_allclose(loads, [1.0, 1.0])

    def test_unmeasured_rank_falls_back_to_mean_rate(self):
        m = [LoadMeasurement(1.0, 10, 10), LoadMeasurement(0.0, 0, 8)]
        loads = estimate_rank_loads(m)
        assert loads[1] == pytest.approx(0.1 * 8)

    def test_no_measurements_at_all(self):
        m = [LoadMeasurement(0.0, 0, 5), LoadMeasurement(0.0, 0, 7)]
        np.testing.assert_allclose(estimate_rank_loads(m), [5.0, 7.0])

    def test_tuple_round_trip(self):
        m = LoadMeasurement(1.5, 4, 6)
        assert LoadMeasurement.from_tuple(m.as_tuple()) == m


class TestPhysicsImbalance:
    def test_balanced_is_zero(self):
        assert physics_imbalance([2.0, 2.0, 2.0]) == 0.0

    def test_formula(self):
        # max 4, mean 2 -> (4 - 2) / 2 = 1.0
        assert physics_imbalance([1.0, 1.0, 4.0, 2.0]) == pytest.approx(1.0)

    def test_empty_or_zero(self):
        assert physics_imbalance([]) == 0.0
        assert physics_imbalance([0.0, 0.0]) == 0.0


@pytest.mark.faults
class TestStragglerDemo:
    """The acceptance criterion: 2x straggler, measured-time scheme 3."""

    def test_mitigation_beats_static(self):
        static = run_straggler_demo(mitigate=False)
        mitigated = run_straggler_demo(mitigate=True)
        assert static["imbalance"] > 0.5          # straggler really hurts
        assert mitigated["imbalance"] < 0.15      # paper-style target
        assert mitigated["imbalance"] < static["imbalance"]
        assert mitigated["columns_moved"] > 0
        assert static["columns_moved"] == 0
        assert mitigated["elapsed"] < static["elapsed"]

    def test_demo_is_deterministic(self):
        a = run_straggler_demo(mitigate=True)
        b = run_straggler_demo(mitigate=True)
        assert a["imbalance"] == b["imbalance"]
        assert a["elapsed"] == b["elapsed"]
