"""Checkpoint round-trip and bit-for-bit recovery of the parallel AGCM."""

import numpy as np
import pytest

from repro.faults import FaultPlan, LinkFault, RankFailure
from repro.faults.checkpoint import (
    CheckpointCorruptError,
    CheckpointData,
    Checkpointer,
    load_checkpoint,
    run_agcm_with_recovery,
    save_checkpoint,
)
from repro.grid import Decomposition2D
from repro.model import make_config
from repro.model.agcm import AGCM
from repro.parallel import GENERIC, ProcessorMesh, Simulator


def _cfg():
    return make_config("tiny", physics_every=2)


def _random_snapshot(rng, cfg):
    from repro.dynamics.state import PROGNOSTIC_NAMES

    def fields():
        out = {}
        for name in PROGNOSTIC_NAMES:
            layers = 1 if name == "ps" else cfg.nlayers
            out[name] = rng.standard_normal((cfg.nlat, cfg.nlon, layers))
        return out

    return CheckpointData(
        step=3,
        time=123.5,
        now=fields(),
        prev=fields(),
        forcing_pt=rng.standard_normal((cfg.nlat, cfg.nlon, cfg.nlayers)),
        forcing_q=rng.standard_normal((cfg.nlat, cfg.nlon, cfg.nlayers)),
        counters=[
            {"measure": (0.25, 10, 12), "physics_calls": 2,
             "columns_moved": 7, "phys_compute_seconds": 0.5,
             "phys_compute_steady": 0.4},
            {"measure": None, "physics_calls": 2, "columns_moved": 0,
             "phys_compute_seconds": 0.3, "phys_compute_steady": 0.3},
        ],
    )


class TestSaveLoadRoundTrip:
    def test_bit_for_bit(self, tmp_path, rng):
        cfg = _cfg()
        data = _random_snapshot(rng, cfg)
        path = save_checkpoint(tmp_path / "snap.npz", data)
        back = load_checkpoint(path)
        assert back.step == data.step and back.time == data.time
        for name in data.now:
            np.testing.assert_array_equal(back.now[name], data.now[name])
            np.testing.assert_array_equal(back.prev[name], data.prev[name])
        np.testing.assert_array_equal(back.forcing_pt, data.forcing_pt)
        np.testing.assert_array_equal(back.forcing_q, data.forcing_q)
        assert back.counters == data.counters  # incl. measure as a tuple

    def test_nbytes_positive_and_exact(self, rng):
        data = _random_snapshot(rng, _cfg())
        want = sum(a.nbytes for a in data.now.values())
        want += sum(a.nbytes for a in data.prev.values())
        want += data.forcing_pt.nbytes + data.forcing_q.nbytes
        assert data.total_nbytes() == want

    def test_checkpointer_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            Checkpointer(0, tmp_path / "x.npz")
        ck = Checkpointer(2, tmp_path / "x")  # suffix normalised
        assert ck.path.suffix == ".npz"
        assert ck.load() is None  # nothing written yet

    def test_due_never_after_final_step(self, tmp_path):
        ck = Checkpointer(2, tmp_path / "x.npz")
        assert [ck.due(s, 6) for s in range(6)] == [
            False, True, False, True, False, False
        ]


class TestIntegrity:
    """Corruption must surface as CheckpointCorruptError, never as an
    opaque numpy/zipfile error or — worse — silently wrong state."""

    def _saved(self, tmp_path, rng):
        cfg = _cfg()
        return save_checkpoint(tmp_path / "snap.npz", _random_snapshot(rng, cfg))

    def _rewrite(self, path, mutate):
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k].copy() for k in z.files}
        mutate(arrays)
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)

    def test_truncated_archive(self, tmp_path, rng):
        path = self._saved(tmp_path, rng)
        path.write_bytes(path.read_bytes()[:200])
        with pytest.raises(CheckpointCorruptError, match="unreadable archive") as err:
            load_checkpoint(path)
        assert path.name in str(err.value)  # names the offending file
        assert err.value.reason.startswith("unreadable archive")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointCorruptError, match="unreadable archive"):
            load_checkpoint(path)

    def test_silent_bit_rot_caught_by_checksum(self, tmp_path, rng):
        path = self._saved(tmp_path, rng)

        def flip(arrays):
            arrays["now_u"][0, 0, 0] += 1.0  # archive still loads fine

        self._rewrite(path, flip)
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_missing_checksum_rejected(self, tmp_path, rng):
        import json

        path = self._saved(tmp_path, rng)

        def strip(arrays):
            meta = json.loads(str(arrays["meta"]))
            del meta["checksum"]
            arrays["meta"] = np.array(json.dumps(meta))

        self._rewrite(path, strip)
        with pytest.raises(CheckpointCorruptError, match="no content checksum"):
            load_checkpoint(path)

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "never-written.npz")

    def test_checkpointer_load_propagates_corruption(self, tmp_path, rng):
        ck = Checkpointer(2, tmp_path / "ck.npz")
        save_checkpoint(ck.path, _random_snapshot(rng, _cfg()))
        ck.written = 1  # as if the save above went through this instance
        ck.path.write_bytes(ck.path.read_bytes()[:200])
        with pytest.raises(CheckpointCorruptError):
            ck.load()


def _serial_fields(cfg, nsteps):
    serial = AGCM(cfg)
    serial.initialize()
    serial.run(nsteps)
    return serial.state.fields()


@pytest.mark.faults
class TestRecovery:
    """End-to-end: fail a rank mid-run, restart, match the serial model."""

    NSTEPS = 6

    def test_recovery_bit_for_bit(self, tmp_path):
        cfg = _cfg()
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        from repro.model.parallel_agcm import agcm_rank_program

        probe = Simulator(mesh.size, GENERIC).run(
            agcm_rank_program, cfg, decomp, self.NSTEPS, False
        )
        plan = FaultPlan(
            seed=11,
            link_faults=(LinkFault(drop_rate=0.01),),
            failures=(RankFailure(rank=2, at=0.55 * probe.elapsed),),
        )
        out = run_agcm_with_recovery(
            cfg, decomp, self.NSTEPS, GENERIC,
            faults=plan, checkpoint_every=2,
            checkpoint_path=tmp_path / "ck.npz",
        )
        assert out.restarts == 1
        assert out.resumed_steps[0] == 0 and out.resumed_steps[1] > 0
        assert out.checkpoints_written >= 1
        assert out.total_elapsed > out.result.elapsed  # lost work charged
        ref = _serial_fields(cfg, self.NSTEPS)
        for name, want in ref.items():
            gathered = decomp.gather(
                [out.result.returns[r]["fields"][name]
                 for r in range(mesh.size)]
            )
            np.testing.assert_array_equal(gathered, want, err_msg=name)

    def test_cold_restart_without_checkpoints(self, tmp_path):
        cfg = _cfg()
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        from repro.model.parallel_agcm import agcm_rank_program

        probe = Simulator(mesh.size, GENERIC).run(
            agcm_rank_program, cfg, decomp, self.NSTEPS, False
        )
        plan = FaultPlan(
            seed=11, failures=(RankFailure(rank=1, at=0.5 * probe.elapsed),)
        )
        out = run_agcm_with_recovery(
            cfg, decomp, self.NSTEPS, GENERIC, faults=plan,
        )
        assert out.restarts == 1 and out.resumed_steps == [0, 0]
        ref = _serial_fields(cfg, self.NSTEPS)
        for name, want in ref.items():
            gathered = decomp.gather(
                [out.result.returns[r]["fields"][name]
                 for r in range(mesh.size)]
            )
            np.testing.assert_array_equal(gathered, want, err_msg=name)

    def test_rerun_is_identical(self, tmp_path):
        cfg = _cfg()
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        plan = FaultPlan(
            seed=5,
            link_faults=(LinkFault(drop_rate=0.02),),
            failures=(RankFailure(rank=0, at=1.0),),
        )

        def go(path):
            return run_agcm_with_recovery(
                cfg, decomp, self.NSTEPS, GENERIC, faults=plan,
                checkpoint_every=3, checkpoint_path=path,
            )

        a = go(tmp_path / "a.npz")
        b = go(tmp_path / "b.npz")
        assert a.total_elapsed == b.total_elapsed
        assert a.failures == b.failures
        assert a.result.clocks == b.result.clocks

    def test_corrupt_checkpoint_degrades_to_cold_start(
        self, tmp_path, monkeypatch
    ):
        """A torn checkpoint write must cost the recovery its resume
        point, not the whole run: warn, cold-start, still bit-for-bit."""
        import repro.faults.checkpoint as ckpt_mod

        cfg = _cfg()
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        from repro.model.parallel_agcm import agcm_rank_program

        probe = Simulator(mesh.size, GENERIC).run(
            agcm_rank_program, cfg, decomp, self.NSTEPS, False
        )
        real_save = save_checkpoint

        def torn_write(path, data):
            out = real_save(path, data)
            raw = out.read_bytes()
            out.write_bytes(raw[: len(raw) // 2])
            return out

        monkeypatch.setattr(ckpt_mod, "save_checkpoint", torn_write)
        plan = FaultPlan(
            seed=11, failures=(RankFailure(rank=2, at=0.55 * probe.elapsed),)
        )
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            out = run_agcm_with_recovery(
                cfg, decomp, self.NSTEPS, GENERIC,
                faults=plan, checkpoint_every=2,
                checkpoint_path=tmp_path / "torn.npz",
            )
        assert out.restarts == 1
        assert out.resumed_steps == [0, 0]  # cold start, not a crash
        ref = _serial_fields(cfg, self.NSTEPS)
        for name, want in ref.items():
            gathered = decomp.gather(
                [out.result.returns[r]["fields"][name]
                 for r in range(mesh.size)]
            )
            np.testing.assert_array_equal(gathered, want, err_msg=name)

    def test_max_restarts_exhausted(self, tmp_path):
        from repro.parallel import RankFailedError

        cfg = _cfg()
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        # a failure at t=0 re-injected manually is consumed after one
        # restart, so exhaustion needs max_restarts=0
        plan = FaultPlan(seed=0, failures=(RankFailure(rank=0, at=0.0),))
        with pytest.raises(RankFailedError):
            run_agcm_with_recovery(
                cfg, decomp, self.NSTEPS, GENERIC, faults=plan,
                max_restarts=0,
            )
