"""Unit tests for the seeded fault plan (pure functions, no simulator)."""

import math

import pytest

from repro.faults import (
    ANY,
    FaultPlan,
    FaultSpec,
    LinkFault,
    RankFailure,
    RetryPolicy,
    SlowdownWindow,
)


class TestFromSpec:
    def test_same_seed_same_plan(self):
        spec = FaultSpec(stragglers=2, drop_rate=0.02, failures=1)
        a = FaultPlan.from_spec(spec, nranks=8, seed=7, horizon=3.0)
        b = FaultPlan.from_spec(spec, nranks=8, seed=7, horizon=3.0)
        assert a == b

    def test_different_seed_different_plan(self):
        spec = FaultSpec(stragglers=2, drop_rate=0.02, failures=1)
        a = FaultPlan.from_spec(spec, nranks=8, seed=7)
        b = FaultPlan.from_spec(spec, nranks=8, seed=8)
        assert a != b

    def test_straggler_and_failure_ranks_disjoint(self):
        spec = FaultSpec(stragglers=3, failures=3)
        plan = FaultPlan.from_spec(spec, nranks=6, seed=0)
        slow = {w.rank for w in plan.slowdowns}
        dead = {f.rank for f in plan.failures}
        assert len(slow) == 3 and len(dead) == 3
        assert not slow & dead

    def test_windows_scale_with_horizon(self):
        spec = FaultSpec(failures=1, failure_window=(0.4, 0.7))
        plan = FaultPlan.from_spec(spec, nranks=4, seed=1, horizon=10.0)
        assert 4.0 <= plan.failures[0].at <= 7.0

    def test_too_many_faulty_ranks_rejected(self):
        with pytest.raises(ValueError, match="only 2 ranks"):
            FaultPlan.from_spec(
                FaultSpec(stragglers=2, failures=1), nranks=2, seed=0
            )


class TestDelivery:
    def test_no_link_faults_is_clean(self):
        plan = FaultPlan(seed=0)
        d = plan.plan_delivery(0, 1, seq=0, t_send=2.0, message_time=0.5)
        assert d.drop_times == () and d.arrival == 2.5

    def test_deterministic_schedule(self):
        plan = FaultPlan(seed=3, link_faults=(LinkFault(drop_rate=0.5),))
        a = [plan.plan_delivery(0, 1, s, 1.0, 0.1) for s in range(200)]
        b = [plan.plan_delivery(0, 1, s, 1.0, 0.1) for s in range(200)]
        assert a == b
        assert any(d.drop_times for d in a)  # 50% drops must hit sometimes

    def test_final_attempt_always_delivers(self):
        retry = RetryPolicy(timeout=0.01, backoff=2.0, max_attempts=4)
        plan = FaultPlan(
            seed=0, link_faults=(LinkFault(drop_rate=0.999),), retry=retry
        )
        for seq in range(50):
            d = plan.plan_delivery(0, 1, seq, 0.0, 0.2)
            assert math.isfinite(d.arrival)
            assert d.retransmissions <= retry.max_attempts - 1

    def test_backoff_spacing(self):
        retry = RetryPolicy(timeout=0.01, backoff=2.0, max_attempts=5)
        plan = FaultPlan(
            seed=1, link_faults=(LinkFault(drop_rate=0.999),), retry=retry
        )
        d = plan.plan_delivery(0, 1, 0, 0.0, 0.0)
        times = list(d.drop_times) + [d.inject_time]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == pytest.approx([0.01 * 2.0**k for k in range(len(gaps))])

    def test_extra_delay_added(self):
        plan = FaultPlan(seed=0, link_faults=(LinkFault(extra_delay=0.25),))
        d = plan.plan_delivery(0, 1, 0, 1.0, 0.5)
        assert d.arrival == pytest.approx(1.75)

    def test_link_fault_matching(self):
        lf = LinkFault(src=2, dst=ANY, t0=1.0, t1=2.0, drop_rate=0.1)
        assert lf.matches(2, 5, 1.5)
        assert not lf.matches(3, 5, 1.5)
        assert not lf.matches(2, 5, 2.0)  # window is half-open


class TestStretchCompute:
    def test_no_windows_identity(self):
        assert FaultPlan(seed=0).stretch_compute(0, 5.0, 1.5) == 1.5

    def test_fully_inside_window(self):
        plan = FaultPlan(
            seed=0, slowdowns=(SlowdownWindow(0, 0.0, math.inf, 3.0),)
        )
        assert plan.stretch_compute(0, 1.0, 2.0) == pytest.approx(6.0)
        assert plan.stretch_compute(1, 1.0, 2.0) == 2.0  # other rank untouched

    def test_straddles_window_end(self):
        # window ends at t=2: one nominal second runs 2x slow until the
        # edge (0.5 nominal done by t=2), the rest at full speed.
        plan = FaultPlan(seed=0, slowdowns=(SlowdownWindow(0, 0.0, 2.0, 2.0),))
        assert plan.stretch_compute(0, 1.0, 1.0) == pytest.approx(1.5)

    def test_starts_before_window(self):
        plan = FaultPlan(seed=0, slowdowns=(SlowdownWindow(0, 2.0, 4.0, 2.0),))
        # 1s of work starting at t=1.5: 0.5 fast, then 0.5 nominal at 2x.
        assert plan.stretch_compute(0, 1.5, 1.0) == pytest.approx(1.5)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="overlapping slowdown windows"):
            FaultPlan(
                seed=0,
                slowdowns=(
                    SlowdownWindow(0, 0.0, 10.0, 2.0),
                    SlowdownWindow(0, 0.0, 10.0, 5.0),
                ),
            )

    def test_same_span_on_different_ranks_allowed(self):
        plan = FaultPlan(
            seed=0,
            slowdowns=(
                SlowdownWindow(0, 0.0, 10.0, 2.0),
                SlowdownWindow(1, 0.0, 10.0, 5.0),
            ),
        )
        assert plan.stretch_compute(0, 0.0, 1.0) == pytest.approx(2.0)
        assert plan.stretch_compute(1, 0.0, 1.0) == pytest.approx(5.0)


class TestValidationAndRecoveryHelpers:
    def test_one_failure_per_rank(self):
        with pytest.raises(ValueError, match="one failure per rank"):
            FaultPlan(
                seed=0,
                failures=(RankFailure(1, 1.0), RankFailure(1, 2.0)),
            )

    def test_bad_retry_policy(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_bad_windows(self):
        with pytest.raises(ValueError):
            SlowdownWindow(0, 1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            SlowdownWindow(0, 0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            LinkFault(drop_rate=1.0)
        with pytest.raises(ValueError):
            RankFailure(0, 1.0, mode="limp")

    def test_negative_rank_and_time_rejected(self):
        with pytest.raises(ValueError):
            SlowdownWindow(-1, 0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            SlowdownWindow(0, -0.5, 1.0, 2.0)
        with pytest.raises(ValueError):
            RankFailure(-3, 1.0)
        with pytest.raises(ValueError):
            LinkFault(src=-2, drop_rate=0.1)
        with pytest.raises(ValueError):
            LinkFault(t0=2.0, t1=1.0, drop_rate=0.1)

    def test_validate_ranks_actionable_messages(self):
        plan = FaultPlan(seed=0, slowdowns=(SlowdownWindow(7, 0.0, 1.0, 2.0),))
        with pytest.raises(ValueError, match=r"out of range for 4 ranks"):
            plan.validate_ranks(4)
        plan.validate_ranks(8)  # in range: no error
        bad = FaultPlan(seed=0, failures=(RankFailure(9, 1.0),))
        with pytest.raises(ValueError, match=r"valid: 0\.\.3"):
            bad.validate_ranks(4)
        link = FaultPlan(seed=0, link_faults=(LinkFault(dst=5, drop_rate=0.1),))
        with pytest.raises(ValueError, match="link-fault"):
            link.validate_ranks(4)

    def test_without_failure_consumes_only_that_rank(self):
        plan = FaultPlan(
            seed=0, failures=(RankFailure(1, 1.0), RankFailure(3, 2.0))
        )
        left = plan.without_failure(1)
        assert [f.rank for f in left.failures] == [3]
        assert plan.without_failures().failures == ()

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(
            seed=5,
            slowdowns=(SlowdownWindow(2, 0.0, 1.0, 2.0),),
            link_faults=(LinkFault(drop_rate=0.01),),
            failures=(RankFailure(0, 0.5),),
        )
        text = plan.describe()
        assert "slowdown: rank 2" in text
        assert "drop 1%" in text
        assert "failure: rank 0" in text
