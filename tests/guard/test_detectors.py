"""Detector unit tests + the NaN-detection property test (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import PROGNOSTIC_NAMES
from repro.grid import Decomposition2D
from repro.model import make_config
from repro.parallel import GENERIC, ProcessorMesh
from repro.guard import (
    NULL_GUARD,
    GuardConfig,
    NumericalHealthError,
    StateCorruption,
    StepGuard,
    run_agcm_guarded,
)
from repro.guard.detectors import CFL_EXEMPT_LAT_DEG, RankGuardState

pytestmark = pytest.mark.guard

NSTEPS = 6


def _setup(dims=(2, 2)):
    cfg = make_config("tiny", physics_every=2)
    mesh = ProcessorMesh(*dims)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    return cfg, mesh, decomp


def _rank_state(cfg, decomp, rank=0):
    grid = cfg.make_grid()
    sub = decomp.subdomain(rank)
    guard = StepGuard(GuardConfig())
    return RankGuardState(guard, rank, grid, sub, cfg.timestep()), grid, sub


def _local_fields(rng, cfg, sub):
    out = {}
    for name in PROGNOSTIC_NAMES:
        k = 1 if name == "ps" else cfg.nlayers
        out[name] = rng.standard_normal((sub.nlat, sub.nlon, k))
    return out


class TestNullGuard:
    def test_disabled_singleton(self):
        assert NULL_GUARD.enabled is False
        assert not hasattr(NULL_GUARD, "__dict__")  # __slots__: no state

    def test_step_guard_enabled(self):
        assert StepGuard(GuardConfig()).enabled is True


class TestCorruptionConsumption:
    def test_consumed_once(self):
        guard = StepGuard(
            GuardConfig(injections=(StateCorruption(3, 1, "pt"),))
        )
        assert guard.take_corruption(2, 1) is None
        assert guard.take_corruption(3, 0) is None
        inj = guard.take_corruption(3, 1)
        assert inj is not None and inj.field == "pt"
        # transiency: a rollback replaying step 3 must see it clean
        assert guard.take_corruption(3, 1) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="step"):
            StateCorruption(-1, 0)
        with pytest.raises(ValueError, match="rank"):
            StateCorruption(0, -1)
        with pytest.raises(ValueError, match="field"):
            StateCorruption(0, 0, field="temperature")


class TestNonfiniteScan:
    def test_clean_state_passes(self, rng):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        now = _local_fields(rng, cfg, sub)
        assert state._scan_nonfinite(now, 0) is None

    def test_nan_found_with_field_name(self, rng):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        now = _local_fields(rng, cfg, sub)
        now["q"][1, 2, 0] = np.inf
        verdict = state._scan_nonfinite(now, 4)
        assert verdict is not None
        assert verdict.detector == "nonfinite" and verdict.step == 4
        assert "'q'" in verdict.detail


class TestCflDetector:
    def test_calm_winds_pass(self, rng):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        now = _local_fields(rng, cfg, sub)
        assert state._check_cfl(now, 0) is None

    def test_violent_equatorial_wind_fires(self, rng):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        now = _local_fields(rng, cfg, sub)
        # A row near the equator is not filter-capped; an absurd wind
        # there must trip the effective-CFL alarm.
        lat = np.abs(grid.lat_deg[sub.lat_slice]).argmin()
        assert abs(grid.lat_deg[sub.lat_slice][lat]) < CFL_EXEMPT_LAT_DEG
        now["u"][lat, :, :] = 5.0e4
        verdict = state._check_cfl(now, 2)
        assert verdict is not None and verdict.detector == "cfl"

    def test_polar_rows_exempt(self, rng):
        cfg = make_config("tiny", physics_every=2)
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        # rank 0 owns the northernmost rows in a 2x2 split
        state, grid, sub = _rank_state(cfg, decomp, rank=0)
        now = _local_fields(np.random.default_rng(0), cfg, sub)
        polar = np.abs(grid.lat_deg[sub.lat_slice]).argmax()
        assert abs(grid.lat_deg[sub.lat_slice][polar]) >= CFL_EXEMPT_LAT_DEG
        now["u"][polar, :, :] = 5.0e4
        now["u"][now["u"] == 5.0e4] = 5.0e4  # only the polar row is wild
        verdict = state._check_cfl(now, 0)
        assert verdict is None


class TestDriftDetector:
    def test_first_check_sets_baseline(self, rng):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        now = _local_fields(rng, cfg, sub)
        totals = state._local_integrals(now)
        assert state._drift_verdict(totals, 0) is None  # no baseline yet

    def test_energy_jump_fires(self, rng):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        base = np.array([1.0, 1.0, 5.0])
        state._drift_base = base
        limit = state.guard.config.energy_drift_limit
        jumped = base * np.array([1.0 + 2.0 * limit, 1.0 + 2.0 * limit, 1.0])
        verdict = state._drift_verdict(jumped, 8)
        assert verdict is not None and verdict.detector == "drift"
        assert "energy" in verdict.detail

    def test_mass_jump_fires(self):
        cfg, mesh, decomp = _setup()
        state, grid, sub = _rank_state(cfg, decomp)
        state._drift_base = np.array([1.0, 1.0, 5.0])
        limit = state.guard.config.mass_drift_limit
        verdict = state._drift_verdict(
            np.array([1.0, 1.0, 5.0 * (1.0 + 2.0 * limit)]), 8
        )
        assert verdict is not None and "mass" in verdict.detail


class TestDetectionEndToEnd:
    @settings(max_examples=6, deadline=None)
    @given(
        step=st.integers(min_value=1, max_value=NSTEPS - 1),
        rank=st.integers(min_value=0, max_value=3),
        fieldidx=st.integers(min_value=0, max_value=len(PROGNOSTIC_NAMES) - 1),
    )
    def test_random_nan_detected_within_one_step(self, step, rank, fieldidx):
        """Property: any injected NaN trips the guard in the same step."""
        cfg, mesh, decomp = _setup()
        gcfg = GuardConfig(
            policy="halt",
            buddy_every=0,
            injections=(
                StateCorruption(step, rank % mesh.size,
                                PROGNOSTIC_NAMES[fieldidx]),
            ),
        )
        with pytest.raises(NumericalHealthError) as err:
            run_agcm_guarded(cfg, decomp, NSTEPS, GENERIC, guard=gcfg)
        assert err.value.verdict.detector == "nonfinite"
        assert err.value.step == step  # detected before the step ends
        assert err.value.rank == rank % mesh.size

    def test_detect_disabled_raises_only_at_end(self):
        cfg, mesh, decomp = _setup()
        gcfg = GuardConfig(
            policy="halt", detect=False, buddy_every=0,
            injections=(StateCorruption(2, 1),),
        )
        with pytest.raises(NumericalHealthError) as err:
            run_agcm_guarded(cfg, decomp, NSTEPS, GENERIC, guard=gcfg)
        assert err.value.step == NSTEPS  # end-of-run check, not step 2
        assert "disabled or skipped" in str(err.value)
