"""Buddy topology, snapshot store semantics, and the fallback chain."""

import numpy as np
import pytest

from repro.faults.checkpoint import Checkpointer
from repro.grid import Decomposition2D
from repro.guard import (
    BuddyCheckpointer,
    GuardConfig,
    StateCorruption,
    run_agcm_guarded,
)
from repro.guard.buddy import ChainCheckpointer
from repro.guard.supervisor import _restore
from repro.model import make_config
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import GENERIC, ProcessorMesh, Simulator

pytestmark = pytest.mark.guard

NSTEPS = 6


def _setup(dims=(2, 2)):
    cfg = make_config("tiny", physics_every=2)
    mesh = ProcessorMesh(*dims)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    return cfg, mesh, decomp


def _bundle(step=2):
    arr = np.zeros((2, 2, 1))
    return {
        "now": {"ps": arr.copy()}, "prev": {"ps": arr.copy()},
        "forcing_pt": arr.copy(), "forcing_q": arr.copy(),
        "time": 1.0, "step": step, "counters": {},
    }


class TestBuddyTopology:
    @pytest.mark.parametrize("dims", [(2, 2), (1, 4), (3, 1)])
    def test_buddy_and_ward_are_inverse_bijections(self, dims):
        mesh = ProcessorMesh(*dims)
        buddies = [mesh.buddy_of(r) for r in range(mesh.size)]
        assert sorted(buddies) == list(range(mesh.size))  # bijection
        for r in range(mesh.size):
            assert mesh.buddy_of(r) != r  # never self-guarding
            assert mesh.ward_of(mesh.buddy_of(r)) == r
            assert mesh.buddy_of(mesh.ward_of(r)) == r

    def test_one_rank_mesh_has_no_partner(self):
        mesh = ProcessorMesh(1, 1)
        assert mesh.buddy_of(0) is None
        assert mesh.ward_of(0) is None


class TestSnapshotStore:
    def test_interval_validation(self):
        with pytest.raises(ValueError, match="positive"):
            BuddyCheckpointer(0, ProcessorMesh(2, 2))

    def test_promotion_needs_every_rank(self):
        mesh = ProcessorMesh(2, 2)
        ck = BuddyCheckpointer(1, mesh)
        for rank in range(mesh.size - 1):
            ck._note_save(rank, 2, _bundle())
        assert ck.load() is None  # incomplete round must not be visible
        ck._note_save(mesh.size - 1, 2, _bundle())
        assert ck.written == 1 and ck.last_step == 2
        data = ck.load()
        assert data is not None and data.step == 2
        assert len(data.bundles) == mesh.size

    def test_failure_drops_home_and_held_replica(self):
        mesh = ProcessorMesh(2, 2)
        ck = BuddyCheckpointer(1, mesh)
        for rank in range(mesh.size):
            ck._note_save(rank, 2, _bundle())
        failed = 1
        guardian = mesh.buddy_of(failed)
        ck.note_failure(failed)
        # the failed rank's replica survives at its guardian ...
        assert ck.load(failed_rank=failed) is not None
        # ... but a snapshot needing the failed rank's own RAM is gone
        assert ck.load(failed_rank=mesh.ward_of(failed)) is None
        # and if the guardian dies too, the replica is lost with it
        for rank in range(mesh.size):
            ck._note_save(rank, 4, _bundle(step=4))
        ck.note_failure(failed)
        ck.note_failure(guardian)
        assert ck.load(failed_rank=failed) is None

    def test_due_periodic_and_capture_final(self):
        mesh = ProcessorMesh(2, 2)
        ck = BuddyCheckpointer(2, mesh)
        assert [ck.due(s, 6) for s in range(6)] == [
            False, True, False, True, False, False
        ]
        ck.capture_final = True
        assert ck.due(5, 6) is True


class _Recorder:
    """Minimal checkpointer double: periodic due, records save steps."""

    def __init__(self, every):
        self.every = every
        self.saved = []
        self.written = 0

    def due(self, step, nsteps):
        return (step + 1) % self.every == 0

    def save(self, ctx, decomp, cfg, *, step, **kwargs):
        self.saved.append(step)
        self.written += 1
        if False:
            yield


class TestChainCheckpointer:
    def test_dispatches_only_to_due_members(self):
        fast, slow = _Recorder(1), _Recorder(3)
        chain = ChainCheckpointer([fast, None, slow], nsteps=NSTEPS)
        assert len(chain.members) == 2  # None members are dropped
        for step in range(NSTEPS):
            if chain.due(step, NSTEPS):
                # the rank program calls save with the *post-step* count
                list(chain.save(None, None, None, step=step + 1))
        assert fast.saved == [1, 2, 3, 4, 5, 6]
        assert slow.saved == [3, 6]
        assert chain.written == fast.written + slow.written


class TestGuardedRunCheckpointCounts:
    def test_buddy_saves_counted(self):
        cfg, mesh, decomp = _setup()
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC,
            guard=GuardConfig(buddy_every=1), return_fields=False,
        )
        # due at done=1..5 (never after the final step)
        assert out.buddy_checkpoints == NSTEPS - 1
        assert out.disk_checkpoints == 0 and out.recoveries == 0


class TestOneRankMesh:
    def test_local_restore_recovers_without_a_partner(self):
        cfg, mesh, decomp = _setup(dims=(1, 1))
        clean = Simulator(mesh.size, GENERIC).run(
            agcm_rank_program, cfg, decomp, NSTEPS, True
        )
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC,
            guard=GuardConfig(
                policy="rollback_retry", buddy_every=1,
                injections=(StateCorruption(step=3, rank=0),),
            ),
        )
        assert out.recoveries == 1
        assert out.decisions[0].source == "buddy"  # pure local memcpy
        for name, want in clean.returns[0]["fields"].items():
            np.testing.assert_array_equal(
                out.result.returns[0]["fields"][name], want, err_msg=name
            )


class TestFallbackChain:
    def _disk_with_snapshot(self, tmp_path, cfg, mesh, decomp):
        ck = Checkpointer(2, tmp_path / "fallback.npz")
        Simulator(mesh.size, GENERIC).run(
            agcm_rank_program, cfg, decomp, NSTEPS, False, ck
        )
        assert ck.written >= 1
        return ck

    def test_partner_failed_falls_back_to_disk(self, tmp_path):
        cfg, mesh, decomp = _setup()
        disk = self._disk_with_snapshot(tmp_path, cfg, mesh, decomp)
        buddy = BuddyCheckpointer(1, mesh)
        for rank in range(mesh.size):
            buddy._note_save(rank, 2, _bundle())
        failed = 0
        buddy.note_failure(failed)
        buddy.note_failure(mesh.buddy_of(failed))  # guardian gone too
        resume, source, note = _restore(buddy, disk, failed)
        assert source == "disk" and resume is not None and note == ""
        assert resume.step == disk.last_step

    def test_corrupt_disk_checkpoint_means_cold_start(self, tmp_path):
        cfg, mesh, decomp = _setup()
        disk = self._disk_with_snapshot(tmp_path, cfg, mesh, decomp)
        disk.path.write_bytes(disk.path.read_bytes()[:100])  # truncate
        resume, source, note = _restore(None, disk, None)
        assert resume is None and source == "cold"
        assert "disk checkpoint unusable" in note

    def test_no_checkpointers_at_all_is_cold(self):
        resume, source, note = _restore(None, None, None)
        assert (resume, source, note) == (None, "cold", "")
