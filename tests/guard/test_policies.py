"""Recovery policies end to end: the closed loop the guard exists for."""

import numpy as np
import pytest

from repro.faults import FaultPlan, RankFailure
from repro.grid import Decomposition2D
from repro.guard import (
    GuardConfig,
    NumericalHealthError,
    StateCorruption,
    run_agcm_guarded,
)
from repro.guard.policies import POLICY_NAMES, make_policy
from repro.model import make_config
from repro.model.parallel_agcm import agcm_rank_program
from repro.obs import Observer
from repro.parallel import GENERIC, ProcessorMesh, Simulator

pytestmark = pytest.mark.guard

NSTEPS = 6


def _setup(dims=(2, 2)):
    cfg = make_config("tiny", physics_every=2)
    mesh = ProcessorMesh(*dims)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    return cfg, mesh, decomp


def _clean_run(cfg, mesh, decomp, return_fields=True):
    return Simulator(mesh.size, GENERIC).run(
        agcm_rank_program, cfg, decomp, NSTEPS, return_fields
    )


def _assert_fields_equal(out, clean, mesh):
    for rank in range(mesh.size):
        for name, want in clean.returns[rank]["fields"].items():
            np.testing.assert_array_equal(
                out.result.returns[rank]["fields"][name], want,
                err_msg=f"rank {rank} field {name}",
            )


class TestPolicyResolution:
    def test_known_names(self):
        assert make_policy("halt").rollback is False
        assert make_policy("rollback_retry").rollback is True
        assert make_policy("rollback_adapt").adapt is True

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="rollback_adapt"):
            make_policy("reboot")

    def test_config_validation(self):
        with pytest.raises(ValueError, match="policy"):
            GuardConfig(policy="reboot")
        with pytest.raises(ValueError, match="nan_every"):
            GuardConfig(nan_every=-1)
        with pytest.raises(ValueError, match="adapt_dt_factor"):
            GuardConfig(adapt_dt_factor=1.5)
        with pytest.raises(ValueError, match="max_recoveries"):
            GuardConfig(max_recoveries=-1)
        assert GuardConfig().with_(policy="halt").policy == "halt"
        assert POLICY_NAMES == ("halt", "rollback_retry", "rollback_adapt")


class TestHalt:
    def test_alarm_reraised_unrecovered(self):
        cfg, mesh, decomp = _setup()
        with pytest.raises(NumericalHealthError) as err:
            run_agcm_guarded(
                cfg, decomp, NSTEPS, GENERIC,
                guard=GuardConfig(
                    policy="halt",
                    injections=(StateCorruption(step=3, rank=1),),
                ),
            )
        assert err.value.step == 3 and err.value.rank == 1


class TestRollbackRetry:
    def test_nan_recovery_bit_for_bit(self):
        """The headline contract: heal a soft error, lose no bits."""
        cfg, mesh, decomp = _setup()
        clean = _clean_run(cfg, mesh, decomp)
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC,
            guard=GuardConfig(
                policy="rollback_retry", buddy_every=2,
                injections=(StateCorruption(step=3, rank=1, field="u"),),
            ),
        )
        assert out.recoveries == 1 and len(out.alarms) == 1
        d = out.decisions[0]
        assert d.kind == "rollback" and d.cause == "nonfinite"
        assert d.source == "buddy" and d.restore_step == 2
        assert out.resumed_steps == [0, 2]
        assert out.total_elapsed > out.result.elapsed  # lost work charged
        _assert_fields_equal(out, clean, mesh)

    def test_rank_failure_recovered_from_buddy(self):
        cfg, mesh, decomp = _setup()
        clean = _clean_run(cfg, mesh, decomp)
        probe = _clean_run(cfg, mesh, decomp, return_fields=False)
        plan = FaultPlan(
            seed=7,
            failures=(RankFailure(rank=2, at=0.6 * probe.elapsed),),
        )
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC, faults=plan,
            guard=GuardConfig(policy="rollback_retry", buddy_every=1),
        )
        assert out.failures and out.failures[0][0] == 2
        d = out.decisions[0]
        assert d.cause == "rank_failure" and d.source == "buddy"
        assert d.restore_step > 0  # diskless restore, not a cold start
        _assert_fields_equal(out, clean, mesh)

    def test_max_recoveries_exhausted_gives_up(self):
        cfg, mesh, decomp = _setup()
        with pytest.raises(NumericalHealthError):
            run_agcm_guarded(
                cfg, decomp, NSTEPS, GENERIC,
                guard=GuardConfig(
                    policy="rollback_retry", max_recoveries=0,
                    injections=(StateCorruption(step=2, rank=0),),
                ),
            )


class TestRollbackAdapt:
    def test_adapted_segment_completes_finite(self):
        cfg, mesh, decomp = _setup()
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC,
            guard=GuardConfig(
                policy="rollback_adapt", buddy_every=2,
                injections=(StateCorruption(step=3, rank=0),),
            ),
        )
        assert out.recoveries == 1
        assert out.decisions[0].kind == "adapt"
        # the segment-end handoff resumes the normal-dt remainder
        assert len(out.resumed_steps) == 3
        for rank in range(mesh.size):
            for name, arr in out.result.returns[rank]["fields"].items():
                assert np.isfinite(arr).all(), f"rank {rank} field {name}"


class TestOverheadContract:
    def test_disabled_guard_is_exactly_free(self):
        cfg, mesh, decomp = _setup()
        plain = _clean_run(cfg, mesh, decomp, return_fields=False)
        off = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC, return_fields=False,
            guard=GuardConfig(detect=False, buddy_every=0),
        )
        assert off.result.elapsed == plain.elapsed  # not "close": equal

    def test_detectors_within_five_percent(self):
        cfg, mesh, decomp = _setup()
        plain = _clean_run(cfg, mesh, decomp, return_fields=False)
        on = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC, return_fields=False,
            guard=GuardConfig(buddy_every=0),
        )
        overhead = on.result.elapsed / plain.elapsed - 1.0
        assert 0.0 <= overhead <= 0.05


class TestObservability:
    def test_guard_counters_and_decisions_recorded(self):
        cfg, mesh, decomp = _setup()
        obs = Observer()
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC, observer=obs,
            guard=GuardConfig(
                policy="rollback_retry", buddy_every=2,
                injections=(StateCorruption(step=3, rank=1),),
            ),
        )
        assert out.recoveries == 1
        m = obs.metrics
        assert m.counter("guard.injections").value >= 1
        assert m.counter("guard.alarms.nonfinite").value == 1
        assert m.counter("guard.decisions.rollback").value == 1
        assert m.counter("guard.restore.buddy").value == 1
        assert m.counter("guard.checks").value > 0

    def test_outcome_describe_mentions_the_decision(self):
        cfg, mesh, decomp = _setup()
        out = run_agcm_guarded(
            cfg, decomp, NSTEPS, GENERIC,
            guard=GuardConfig(
                injections=(StateCorruption(step=3, rank=0),),
            ),
        )
        text = out.describe()
        assert "1 recovery(ies)" in text and "buddy" in text


class TestApiIntegration:
    def test_guard_argument_resolution(self):
        from repro import api

        assert api._resolve_guard(None) is None
        assert api._resolve_guard(False) is None
        assert api._resolve_guard(True).policy == "rollback_retry"
        assert api._resolve_guard("rollback_adapt").policy == "rollback_adapt"
        gcfg = GuardConfig(buddy_every=4)
        assert api._resolve_guard(gcfg) is gcfg
        with pytest.raises(TypeError, match="guard must be"):
            api._resolve_guard(3.14)

    def test_guard_experiment_runs_via_api(self):
        from repro import api

        result = api.run(
            "guard", guard=GuardConfig(buddy_every=2), nsteps=4,
        )
        text = result.render()
        assert "overhead" in text.lower()
        assert "buddy" in text.lower()

    def test_cli_guard_command_writes_report(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        report = tmp_path / "guard-report.md"
        monkeypatch.chdir(tmp_path)
        rc = main(["guard", "--policy", "rollback_retry",
                   "--report-out", str(report)])
        assert rc == 0
        assert report.exists()
        assert "Guard supervision report" in report.read_text()

    def test_cli_rejects_bad_policy(self, capsys):
        from repro.__main__ import main

        rc = main(["guard", "--policy", "reboot"])
        assert rc == 2
        assert "rollback_retry" in capsys.readouterr().err
