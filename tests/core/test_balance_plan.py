"""Tests for the generic row-redistribution load balancer (eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.balance_plan import balanced_assignment, natural_assignment
from repro.core.masks import make_filter_plan
from repro.grid.decomposition import Decomposition2D
from repro.grid.sphere import SphericalGrid
from repro.parallel.topology import ProcessorMesh


def _setup(nlat=18, nlon=24, m=3, n=4):
    grid = SphericalGrid(nlat, nlon)
    decomp = Decomposition2D(nlat, nlon, ProcessorMesh(m, n))
    plan = make_filter_plan(grid)
    return grid, decomp, plan


class TestNaturalAssignment:
    def test_targets_equal_owners(self):
        _, decomp, plan = _setup()
        a = natural_assignment(plan, decomp)
        assert a.target_row == a.owner_row
        assert a.rows_moved() == 0
        assert a.stage_a_moves() == []

    def test_owner_rows_match_latitudes(self):
        _, decomp, plan = _setup()
        a = natural_assignment(plan, decomp)
        for u, unit in enumerate(plan.units):
            lo, hi = decomp.lat_bounds_of_proc_row(a.owner_row[u])
            assert lo <= unit.lat < hi

    def test_low_latitude_rows_idle(self):
        """The load imbalance the paper's Figure 1 blames."""
        _, decomp, plan = _setup(m=3)
        a = natural_assignment(plan, decomp)
        # Middle processor row owns no filtered rows on this grid.
        assert a.units_assigned_to_row(1) == []
        lines = a.lines_per_rank()
        assert (lines == 0).sum() > 0


class TestBalancedAssignment:
    def test_every_unit_assigned_exactly_once(self):
        _, decomp, plan = _setup()
        a = balanced_assignment(plan, decomp)
        seen = []
        for row in range(decomp.mesh.nlat_procs):
            seen.extend(a.units_assigned_to_row(row))
        assert sorted(seen) == list(range(len(plan.units)))

    def test_rows_balanced_eq3(self):
        """Each processor row gets ceil/floor(sum R_j / M) units."""
        _, decomp, plan = _setup()
        a = balanced_assignment(plan, decomp)
        counts = [
            len(a.units_assigned_to_row(r))
            for r in range(decomp.mesh.nlat_procs)
        ]
        assert sum(counts) == plan.total_rows
        assert max(counts) - min(counts) <= 1

    def test_lines_balanced_per_rank(self):
        _, decomp, plan = _setup()
        a = balanced_assignment(plan, decomp)
        lines = a.lines_per_rank()
        assert lines.sum() == plan.total_rows
        assert lines.max() - lines.min() <= 1
        assert (lines == 0).sum() == 0

    def test_stage_a_moves_consistent(self):
        _, decomp, plan = _setup()
        a = balanced_assignment(plan, decomp)
        moved = sum(len(units) for _, _, units in a.stage_a_moves())
        assert moved == a.rows_moved()
        for src, dst, units in a.stage_a_moves():
            assert src != dst
            for u in units:
                assert a.owner_row[u] == src
                assert a.target_row[u] == dst

    @given(
        m=st.integers(1, 6),
        n=st.integers(1, 6),
        nlat=st.sampled_from([12, 18, 30]),
    )
    @settings(max_examples=20, deadline=None)
    def test_balance_property(self, m, n, nlat):
        if nlat < m or 16 < n:
            return
        grid = SphericalGrid(nlat, 16)
        decomp = Decomposition2D(nlat, 16, ProcessorMesh(m, n))
        plan = make_filter_plan(grid)
        a = balanced_assignment(plan, decomp)
        lines = a.lines_per_rank()
        assert lines.sum() == plan.total_rows
        # Per processor row, columns are within one line of each other.
        for row in range(m):
            row_lines = [
                len(a.lines_on_rank(decomp.mesh.rank_of(row, j)))
                for j in range(n)
            ]
            assert max(row_lines) - min(row_lines) <= 1

    def test_paper_mesh(self):
        """The paper's production mesh: 8 x 30 over the 90 x 144 grid."""
        grid = SphericalGrid(90, 144)
        decomp = Decomposition2D(90, 144, ProcessorMesh(8, 30))
        plan = make_filter_plan(grid)
        nat = natural_assignment(plan, decomp)
        bal = balanced_assignment(plan, decomp)
        assert nat.lines_per_rank().max() >= 2 * bal.lines_per_rank().max()
        assert bal.lines_per_rank().min() >= 0
        assert (nat.lines_per_rank() == 0).sum() >= decomp.mesh.size // 3
