"""Tests for the three physics load-balancing schemes (Figures 4-6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.physics_lb import (
    BalanceResult,
    CyclicShuffleBalancer,
    Move,
    PairwiseExchangeBalancer,
    PreviousPassEstimator,
    SortedGreedyBalancer,
    apply_moves,
    imbalance,
    pairwise_pass,
)

PAPER_LOADS = [65.0, 24.0, 38.0, 15.0]

loads_strategy = st.lists(
    st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40,
)


class TestImbalanceMetric:
    def test_paper_definition(self):
        """(max - mean) / mean, as defined above Tables 1-3."""
        loads = [11.0, 4.9]
        mean = (11.0 + 4.9) / 2
        assert imbalance(loads) == pytest.approx((11.0 - mean) / mean)

    def test_uniform_is_zero(self):
        assert imbalance([5, 5, 5]) == 0.0

    def test_empty_and_zero(self):
        assert imbalance([]) == 0.0
        assert imbalance([0, 0]) == 0.0


class TestApplyMoves:
    def test_simple_move(self):
        out = apply_moves([10, 0], [Move(0, 1, 4)])
        np.testing.assert_allclose(out, [6, 4])

    def test_conservation(self):
        out = apply_moves([10, 5, 3], [Move(0, 2, 2), Move(1, 0, 1)])
        assert out.sum() == pytest.approx(18)

    def test_overdraw_rejected(self):
        with pytest.raises(ValueError):
            apply_moves([1, 0], [Move(0, 1, 5)])

    def test_move_validation(self):
        with pytest.raises(ValueError):
            Move(0, 0, 1.0)
        with pytest.raises(ValueError):
            Move(0, 1, -1.0)


class TestScheme1Cyclic:
    def test_perfect_balance(self):
        res = CyclicShuffleBalancer().balance(PAPER_LOADS)
        np.testing.assert_allclose(res.loads_after, 35.5)
        assert res.imbalance_after == pytest.approx(0.0)

    def test_quadratic_messages(self):
        """The O(N^2) communication the paper rejects it for."""
        res = CyclicShuffleBalancer().balance([1.0] * 8)
        assert res.message_count == 8 * 7

    def test_single_rank_noop(self):
        res = CyclicShuffleBalancer().balance([5.0])
        assert res.moves == []

    @given(loads=loads_strategy)
    @settings(max_examples=30, deadline=None)
    def test_always_exact_mean(self, loads):
        res = CyclicShuffleBalancer().balance(loads)
        np.testing.assert_allclose(
            res.loads_after, np.mean(loads), atol=1e-9 * (1 + np.mean(loads))
        )


class TestScheme2Sorted:
    def test_paper_example_balances(self):
        res = SortedGreedyBalancer().balance(PAPER_LOADS)
        assert res.imbalance_after < 1e-9

    def test_linear_messages(self):
        """O(N) moves — the paper's improvement over scheme 1."""
        rng = np.random.default_rng(0)
        loads = rng.random(20) * 10
        res = SortedGreedyBalancer().balance(loads)
        assert res.message_count <= len(loads) - 1

    def test_moves_go_surplus_to_deficit(self):
        loads = np.array(PAPER_LOADS)
        res = SortedGreedyBalancer().balance(loads)
        mean = loads.mean()
        for m in res.moves:
            assert loads[m.src] > mean
            assert loads[m.dst] < mean

    @given(loads=loads_strategy)
    @settings(max_examples=30, deadline=None)
    def test_never_worse(self, loads):
        res = SortedGreedyBalancer().balance(loads)
        assert res.imbalance_after <= res.imbalance_before + 1e-9

    def test_tolerance_skips_small_transfers(self):
        res = SortedGreedyBalancer(tolerance=100.0).balance(PAPER_LOADS)
        assert res.moves == []


class TestScheme3Pairwise:
    def test_figure6_worked_example(self):
        """The paper's Figure 6 numbers, exactly."""
        balancer = PairwiseExchangeBalancer(max_passes=2, integer_amounts=True)
        history = balancer.balance_history(PAPER_LOADS)
        np.testing.assert_allclose(history[0], [65, 24, 38, 15])
        np.testing.assert_allclose(history[1], [40, 31, 31, 40])
        np.testing.assert_allclose(history[2], [36, 35, 35, 36])

    def test_pairwise_messages_per_pass(self):
        moves = pairwise_pass([8.0, 1.0, 6.0, 2.0, 7.0, 3.0])
        assert len(moves) <= 3  # floor(P/2) pairwise exchanges

    def test_heaviest_pairs_with_lightest(self):
        moves = pairwise_pass(PAPER_LOADS)
        first = moves[0]
        assert first.src == 0 and first.dst == 3  # 65 pairs with 15

    def test_pair_tolerance(self):
        moves = pairwise_pass([10.0, 9.5], pair_tolerance=1.0)
        assert moves == []

    def test_early_stop_on_tolerance(self):
        balancer = PairwiseExchangeBalancer(
            max_passes=10, imbalance_tolerance=0.15
        )
        res = balancer.balance(PAPER_LOADS)
        assert res.imbalance_after <= 0.15

    @given(loads=loads_strategy)
    @settings(max_examples=40, deadline=None)
    def test_pass_never_increases_imbalance(self, loads):
        """The convergence property the paper relies on."""
        loads = np.asarray(loads)
        moves = pairwise_pass(loads)
        after = apply_moves(loads, moves)
        assert imbalance(after) <= imbalance(loads) + 1e-9

    @given(loads=loads_strategy, passes=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_monotone_over_passes(self, loads, passes):
        balancer = PairwiseExchangeBalancer(max_passes=passes)
        history = balancer.balance_history(loads)
        imbs = [imbalance(h) for h in history]
        assert all(b <= a + 1e-9 for a, b in zip(imbs, imbs[1:]))

    @given(loads=loads_strategy)
    @settings(max_examples=40, deadline=None)
    def test_load_conserved(self, loads):
        res = PairwiseExchangeBalancer(max_passes=3).balance(loads)
        assert res.loads_after.sum() == pytest.approx(
            np.sum(loads), rel=1e-9, abs=1e-6
        )

    def test_two_passes_reach_paper_band(self):
        """Tables 1-3: two passes bring ~40% imbalance under ~8%."""
        rng = np.random.default_rng(42)
        loads = 1.0 + 0.8 * rng.random(64)
        balancer = PairwiseExchangeBalancer(max_passes=2)
        res = balancer.balance(loads)
        assert res.imbalance_before > 0.10
        assert res.imbalance_after < 0.08

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PairwiseExchangeBalancer(max_passes=0)
        with pytest.raises(ValueError):
            PairwiseExchangeBalancer(imbalance_tolerance=-1)


class TestEstimator:
    def test_uniform_before_history(self):
        est = PreviousPassEstimator(4)
        assert not est.has_history
        np.testing.assert_allclose(est.estimate(), 1.0)

    def test_previous_pass_returned(self):
        est = PreviousPassEstimator(3)
        est.record([1.0, 2.0, 3.0])
        np.testing.assert_allclose(est.estimate(), [1, 2, 3])

    def test_smoothing(self):
        est = PreviousPassEstimator(2, alpha=0.5)
        est.record([0.0, 0.0])
        est.record([2.0, 4.0])
        np.testing.assert_allclose(est.estimate(), [1.0, 2.0])

    def test_shape_checked(self):
        est = PreviousPassEstimator(2)
        with pytest.raises(ValueError):
            est.record([1.0, 2.0, 3.0])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PreviousPassEstimator(0)
        with pytest.raises(ValueError):
            PreviousPassEstimator(2, alpha=0.0)
