"""Tests for the distributed 1-D FFT (the paper's rejected alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import apply_serial_filter, make_filter_plan, prepare_filter_backend
from repro.core.distributed_fft import (
    bit_reverse_indices,
    bitrev_transfer,
    check_distributed_fft_shape,
    fft_dif_bitrev,
    ifft_dit_bitrev,
    is_power_of_two,
)
from repro.grid import Decomposition2D, SphericalGrid
from repro.parallel import GENERIC, ProcessorMesh, Simulator
from repro.verify import tolerances


class TestBitReversal:
    def test_small_permutation(self):
        np.testing.assert_array_equal(
            bit_reverse_indices(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_involution(self):
        br = bit_reverse_indices(32)
        np.testing.assert_array_equal(br[br], np.arange(32))

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)

    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(64)
        assert not is_power_of_two(0) and not is_power_of_two(144)


class TestSerialTransforms:
    @given(logn=st.integers(1, 7), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_dif_matches_numpy(self, logn, seed):
        n = 2**logn
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        got = fft_dif_bitrev(x)
        ref = np.fft.fft(x)[bit_reverse_indices(n)]
        np.testing.assert_allclose(got, ref, atol=tolerances.FFT_ATOL)

    @given(logn=st.integers(1, 7), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, logn, seed):
        n = 2**logn
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft_dit_bitrev(fft_dif_bitrev(x)), x,
                                   atol=tolerances.FFT_ATOL)

    def test_batched_axis0(self, rng):
        x = rng.standard_normal((16, 4))
        ref = np.fft.fft(x, axis=0)[bit_reverse_indices(16)]
        np.testing.assert_allclose(fft_dif_bitrev(x), ref, atol=tolerances.FFT_ATOL)

    def test_rejects_non_power_length(self):
        with pytest.raises(ValueError):
            fft_dif_bitrev(np.zeros(12))
        with pytest.raises(ValueError):
            ifft_dit_bitrev(np.zeros(10))


class TestBitrevTransfer:
    def test_hermitian_mirroring(self):
        n = 8
        t = np.array([1.0, 0.9, 0.5, 0.2, 0.1])
        full = bitrev_transfer(t, n)
        br = bit_reverse_indices(n)
        natural = full[np.argsort(br)]  # undo the permutation
        np.testing.assert_allclose(natural[:5], t)
        np.testing.assert_allclose(natural[5:], t[1:4][::-1])

    def test_filtering_equivalence(self, rng):
        """DIF -> bit-reversed multiply -> DIT equals rfft filtering."""
        n = 32
        t = np.clip(rng.random(n // 2 + 1), 0, 1)
        t[0] = 1.0
        line = rng.standard_normal(n)
        via_rfft = np.fft.irfft(np.fft.rfft(line) * t, n=n)
        spec = fft_dif_bitrev(line) * bitrev_transfer(t, n)
        via_dif = ifft_dit_bitrev(spec).real
        np.testing.assert_allclose(via_dif, via_rfft, atol=tolerances.FFT_ATOL)

    def test_bin_count_checked(self):
        with pytest.raises(ValueError):
            bitrev_transfer(np.ones(4), 16)


class TestShapeValidation:
    def test_accepts_valid(self):
        assert check_distributed_fft_shape(32, 4) == 8

    def test_rejects_mixed_radix_line(self):
        """The AGCM's 144-point lines: radix-2 cannot handle them."""
        with pytest.raises(ValueError, match="144"):
            check_distributed_fft_shape(144, 4)

    def test_rejects_non_power_ranks(self):
        with pytest.raises(ValueError):
            check_distributed_fft_shape(32, 3)

    def test_backend_validation_at_prepare(self):
        grid = SphericalGrid(16, 24)  # 24 is not a power of two
        plan = make_filter_plan(grid)
        decomp = Decomposition2D(16, 24, ProcessorMesh(2, 2))
        with pytest.raises(ValueError):
            prepare_filter_backend("fft-distributed", plan, decomp)


class TestDistributedBackend:
    @pytest.fixture(scope="class")
    def setup(self):
        grid = SphericalGrid(nlat=16, nlon=32)
        rng = np.random.default_rng(5)
        fields = {
            n: rng.standard_normal((16, 32, 3)) for n in ("u", "v", "pt", "q")
        }
        fields["ps"] = rng.standard_normal((16, 32, 1))
        plan = make_filter_plan(grid)
        ref = {n: f.copy() for n, f in fields.items()}
        apply_serial_filter(plan, ref)
        return grid, fields, plan, ref

    @pytest.mark.parametrize("dims", [(1, 1), (2, 2), (4, 4), (2, 8)])
    def test_matches_serial_filter(self, setup, dims):
        grid, fields, plan, ref = setup
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)
        backend = prepare_filter_backend("fft-distributed", plan, decomp)

        def program(ctx):
            local = {
                n: decomp.scatter(fields[n])[ctx.rank].copy() for n in fields
            }
            yield from backend.apply(ctx, local)
            return local

        res = Simulator(mesh.size, GENERIC).run(program)
        for n in fields:
            got = decomp.gather(
                [res.returns[r][n] for r in range(mesh.size)]
            )
            np.testing.assert_allclose(got, ref[n], atol=tolerances.FFT_ATOL)

    def test_log_p_message_rounds(self, setup):
        """2 log2(P) block exchanges per rank per filtering pass."""
        grid, fields, plan, _ = setup
        mesh = ProcessorMesh(2, 8)
        decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)
        backend = prepare_filter_backend("fft-distributed", plan, decomp)

        def program(ctx):
            local = {
                n: decomp.scatter(fields[n])[ctx.rank].copy() for n in fields
            }
            yield from backend.apply(ctx, local)

        res = Simulator(mesh.size, GENERIC).run(program)
        # Every rank in an active row sends 2 * log2(8) = 6 messages.
        active = [r for r in range(mesh.size)
                  if res.trace.ranks[r].messages_sent > 0]
        for r in active:
            assert res.trace.ranks[r].messages_sent == 6

    def test_fewer_messages_than_transpose(self, setup):
        """The paper's trade: the 1-D FFT needs fewer messages but moves
        more data than the transpose."""
        grid, fields, plan, _ = setup
        mesh = ProcessorMesh(2, 8)
        decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)

        traces = {}
        for name in ("fft", "fft-distributed"):
            backend = prepare_filter_backend(name, plan, decomp)

            def program(ctx):
                local = {
                    n: decomp.scatter(fields[n])[ctx.rank].copy()
                    for n in fields
                }
                yield from backend.apply(ctx, local)

            traces[name] = Simulator(mesh.size, GENERIC).run(program).trace
        assert (
            traces["fft-distributed"].total_messages()
            < traces["fft"].total_messages()
        )
        assert (
            traces["fft-distributed"].total_bytes()
            > traces["fft"].total_bytes()
        )
