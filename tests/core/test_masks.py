"""Tests for filter plans and row units."""

import pytest

from repro.core.masks import (
    DEFAULT_STRONG_VARS,
    DEFAULT_WEAK_VARS,
    make_filter_plan,
)


class TestPlanConstruction:
    def test_default_variable_sets(self, paper_grid):
        plan = make_filter_plan(paper_grid)
        assert plan.strong_vars == DEFAULT_STRONG_VARS
        assert plan.weak_vars == DEFAULT_WEAK_VARS

    def test_total_rows(self, paper_grid):
        plan = make_filter_plan(paper_grid)
        s_rows = sum(plan.strong.rows_per_hemisphere())
        w_rows = sum(plan.weak.rows_per_hemisphere())
        expected = s_rows * len(DEFAULT_STRONG_VARS) + w_rows * len(
            DEFAULT_WEAK_VARS
        )
        assert plan.total_rows == expected

    def test_rows_per_variable(self, paper_grid):
        plan = make_filter_plan(paper_grid)
        counts = plan.rows_per_variable()
        assert counts["u"] == counts["v"] == counts["pt"]
        assert counts["ps"] == counts["q"]
        assert counts["u"] > counts["q"]  # strong band is wider

    def test_overlapping_sets_rejected(self, paper_grid):
        with pytest.raises(ValueError):
            make_filter_plan(paper_grid, strong_vars=("u",), weak_vars=("u",))

    def test_deterministic_order(self, paper_grid):
        p1 = make_filter_plan(paper_grid)
        p2 = make_filter_plan(paper_grid)
        assert p1.units == p2.units

    def test_filter_for_unit(self, paper_grid):
        plan = make_filter_plan(paper_grid)
        for unit in plan.units[:5]:
            assert plan.filter_for(unit).name == unit.filter_name


class TestPlanQueries:
    def test_units_in_lat_range(self, paper_grid):
        plan = make_filter_plan(paper_grid)
        south = plan.units_in_lat_range(0, 10)
        assert south
        assert all(0 <= u.lat < 10 for u in south)
        equatorial = plan.units_in_lat_range(40, 50)
        assert equatorial == []

    def test_balanced_rows_per_group(self, paper_grid):
        """Paper eq. (3): ceil/floor(sum R_j / n) per group."""
        plan = make_filter_plan(paper_grid)
        for n in (1, 3, 8, 30):
            counts = plan.balanced_rows_per_group(n)
            assert sum(counts) == plan.total_rows
            assert max(counts) - min(counts) <= 1
