"""Tests for the polar filter definitions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.spectral import PolarFilter, strong_filter, weak_filter
from repro.grid.sphere import SphericalGrid


class TestTransferProperties:
    def test_zonal_mean_never_damped(self, paper_grid):
        f = strong_filter(paper_grid)
        for j in f.latitude_indices():
            assert f.transfer(int(j))[0] == 1.0

    def test_transfer_bounded(self, paper_grid):
        f = strong_filter(paper_grid)
        for j in range(paper_grid.nlat):
            t = f.transfer(j)
            assert np.all(t >= 0.0) and np.all(t <= 1.0)

    def test_no_damping_equatorward(self, paper_grid):
        f = strong_filter(paper_grid)
        equator_row = paper_grid.nlat // 2
        np.testing.assert_array_equal(f.transfer(equator_row), 1.0)

    def test_damping_monotone_in_wavenumber(self, paper_grid):
        """Shorter waves are damped at least as much."""
        f = strong_filter(paper_grid)
        polar_row = paper_grid.nlat - 1
        t = f.transfer(polar_row)
        assert np.all(np.diff(t[1:]) <= 1e-12)

    def test_damping_grows_poleward(self, paper_grid):
        f = strong_filter(paper_grid)
        rows = f.latitude_indices()
        north = [int(j) for j in rows if paper_grid.lat_deg[j] > 0]
        damp = [f.damping_at(j) for j in north]
        assert all(b >= a - 1e-12 for a, b in zip(damp, damp[1:]))

    def test_weak_filter_damps_less(self, paper_grid):
        s, w = strong_filter(paper_grid), weak_filter(paper_grid)
        j = paper_grid.nlat - 1  # northernmost row, both filters active
        assert w.damping_at(j) < s.damping_at(j)

    def test_transfer_caching_returns_readonly(self, paper_grid):
        t = strong_filter(paper_grid).transfer(0)
        with pytest.raises(ValueError):
            t[0] = 0.5


class TestLatitudeBands:
    def test_strong_covers_about_half(self, paper_grid):
        """Strong filtering: poles to 45 deg, ~half of each hemisphere."""
        south, north = strong_filter(paper_grid).rows_per_hemisphere()
        half = paper_grid.nlat // 4  # half a hemisphere
        assert south == north
        assert abs(south - half) <= 1

    def test_weak_covers_about_third(self, paper_grid):
        """Weak filtering: poles to 60 deg, ~one third of each hemisphere."""
        south, north = weak_filter(paper_grid).rows_per_hemisphere()
        third = paper_grid.nlat // 6
        assert abs(south - third) <= 1

    def test_mask_matches_indices(self, small_grid):
        f = strong_filter(small_grid)
        mask = f.latitude_mask()
        np.testing.assert_array_equal(np.nonzero(mask)[0], f.latitude_indices())

    def test_invalid_critical_latitude(self, small_grid):
        with pytest.raises(ValueError):
            PolarFilter(small_grid, critical_lat_deg=90.0, name="bad")


class TestKernelEquivalence:
    def test_kernel_sums_to_one(self, small_grid):
        """DC preservation: circular kernel sums to T(0) = 1 -> conserves
        the zonal mean (and hence global mass)."""
        f = strong_filter(small_grid)
        for j in f.latitude_indices():
            assert f.kernel(int(j)).sum() == pytest.approx(1.0)

    def test_kernel_is_irfft_of_transfer(self, small_grid):
        f = strong_filter(small_grid)
        j = int(f.latitude_indices()[0])
        spec = np.fft.rfft(f.kernel(j))
        np.testing.assert_allclose(spec.real, f.transfer(j), atol=1e-12)
        np.testing.assert_allclose(spec.imag, 0.0, atol=1e-12)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_fft_equals_convolution_property(self, seed):
        """The convolution theorem — the identity the whole optimisation
        story rests on — on random lines."""
        grid = SphericalGrid(10, 16)
        f = strong_filter(grid)
        j = int(f.latitude_indices()[-1])
        line = np.random.default_rng(seed).standard_normal(grid.nlon)
        via_fft = np.fft.irfft(np.fft.rfft(line) * f.transfer(j), n=grid.nlon)
        kernel = f.kernel(j)
        idx = (np.arange(grid.nlon)[:, None] - np.arange(grid.nlon)) % grid.nlon
        via_conv = kernel[idx] @ line
        np.testing.assert_allclose(via_fft, via_conv, atol=1e-10)

    def test_damped_bin_count_grows_poleward(self, paper_grid):
        f = strong_filter(paper_grid)
        rows = [int(j) for j in f.latitude_indices()
                if paper_grid.lat_deg[j] > 0]
        counts = [f.damped_bin_count(j) for j in rows]
        assert counts[-1] > counts[0]
        assert counts[-1] <= paper_grid.nlon // 2

    def test_no_bins_damped_at_equator(self, paper_grid):
        assert strong_filter(paper_grid).damped_bin_count(45) == 0
