"""Tests for the convolution (eq. 2) and FFT (eq. 1) filtering kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.convolution import (
    circulant_matrix,
    convolution_filter_rows,
    convolution_flop_count,
    convolve_line,
)
from repro.core.fft import fft_filter_flop_count, fft_filter_line, fft_filter_rows
from repro.core.spectral import strong_filter, weak_filter
from repro.grid.sphere import SphericalGrid
from repro.verify import tolerances


class TestCirculant:
    def test_identity_kernel(self):
        kernel = np.zeros(5)
        kernel[0] = 1.0
        np.testing.assert_allclose(circulant_matrix(kernel), np.eye(5))

    def test_shift_kernel(self, rng):
        kernel = np.zeros(6)
        kernel[1] = 1.0  # circular shift by one
        line = rng.standard_normal(6)
        np.testing.assert_allclose(
            convolve_line(line, kernel), np.roll(line, 1)
        )

    def test_matches_numpy_convolve(self, rng):
        kernel = rng.standard_normal(8)
        line = rng.standard_normal(8)
        ours = convolve_line(line, kernel)
        ref = np.real(
            np.fft.ifft(np.fft.fft(kernel) * np.fft.fft(line))
        )
        np.testing.assert_allclose(ours, ref, atol=tolerances.SPECTRAL_ATOL)

    def test_multilayer_lines(self, rng):
        kernel = rng.standard_normal(8)
        lines = rng.standard_normal((8, 3))
        out = convolve_line(lines, kernel)
        for k in range(3):
            np.testing.assert_allclose(
                out[:, k], convolve_line(lines[:, k], kernel)
            )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            convolve_line(np.zeros(4), np.zeros(5))


class TestFilterRows:
    def test_unfiltered_rows_untouched(self, small_grid, rng):
        field = rng.standard_normal((small_grid.nlat, small_grid.nlon))
        f = strong_filter(small_grid)
        out = fft_filter_rows(field, f)
        untouched = ~f.latitude_mask()
        np.testing.assert_array_equal(out[untouched], field[untouched])

    def test_fft_equals_convolution_full_field(self, small_grid, rng):
        field = rng.standard_normal((small_grid.nlat, small_grid.nlon, 4))
        for pfilter in (strong_filter(small_grid), weak_filter(small_grid)):
            a = fft_filter_rows(field, pfilter)
            b = convolution_filter_rows(field, pfilter)
            np.testing.assert_allclose(a, b, atol=tolerances.FILTER_ATOL)

    def test_filter_is_projection_like(self, small_grid, rng):
        """Applying twice damps at least as much as once, never amplifies."""
        field = rng.standard_normal((small_grid.nlat, small_grid.nlon))
        f = strong_filter(small_grid)
        once = fft_filter_rows(field, f)
        twice = fft_filter_rows(once, f)
        j = int(f.latitude_indices()[0])
        def power(x):
            spec = np.fft.rfft(x[j])
            return np.abs(spec[1:])
        assert np.all(power(twice) <= power(once) + tolerances.SPECTRAL_ATOL)
        assert np.all(power(once) <= power(field) + tolerances.SPECTRAL_ATOL)

    def test_zonal_mean_preserved(self, small_grid, rng):
        """Mass conservation through the filter (s = 0 untouched)."""
        field = rng.standard_normal((small_grid.nlat, small_grid.nlon))
        out = fft_filter_rows(field, strong_filter(small_grid))
        np.testing.assert_allclose(
            out.mean(axis=1), field.mean(axis=1), atol=tolerances.SPECTRAL_ATOL
        )

    def test_explicit_row_selection(self, small_grid, rng):
        field = rng.standard_normal((small_grid.nlat, small_grid.nlon))
        f = strong_filter(small_grid)
        out = fft_filter_rows(field, f, lat_indices=[0])
        np.testing.assert_array_equal(out[1:], field[1:])
        assert not np.allclose(out[0], field[0])

    def test_empty_selection_noop(self, small_grid, rng):
        field = rng.standard_normal((small_grid.nlat, small_grid.nlon))
        out = fft_filter_rows(field, strong_filter(small_grid), lat_indices=[])
        np.testing.assert_array_equal(out, field)

    def test_wrong_nlon(self, small_grid):
        f = strong_filter(small_grid)
        with pytest.raises(ValueError):
            fft_filter_rows(np.zeros((4, 99)), f)
        with pytest.raises(ValueError):
            convolution_filter_rows(np.zeros((4, 99)), f)

    def test_transfer_bin_mismatch(self):
        with pytest.raises(ValueError):
            fft_filter_line(np.zeros(16), np.ones(4))

    @given(seed=st.integers(0, 500), nlat=st.integers(8, 16),
           nlon=st.sampled_from([12, 16, 24]))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, seed, nlat, nlon):
        grid = SphericalGrid(nlat, nlon)
        field = np.random.default_rng(seed).standard_normal((nlat, nlon))
        f = weak_filter(grid)
        np.testing.assert_allclose(
            fft_filter_rows(field, f),
            convolution_filter_rows(field, f),
            atol=tolerances.FILTER_ATOL,
        )


class TestFlopCounts:
    def test_convolution_count(self):
        assert convolution_flop_count(144, 10, 9) == 2 * 144 * 144 * 10 * 9

    def test_fft_count_scales(self):
        assert fft_filter_flop_count(144, 2, 3) == pytest.approx(
            6 * fft_filter_flop_count(144, 1, 1)
        )

    def test_fft_cheaper_than_convolution(self):
        assert fft_filter_flop_count(144, 1, 1) < convolution_flop_count(
            144, 1, 1
        )
