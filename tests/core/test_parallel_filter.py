"""Parallel filter drivers vs the serial reference — the key equivalence."""

import numpy as np
import pytest

from repro.core import (
    FILTER_BACKENDS,
    apply_serial_filter,
    make_filter_plan,
    prepare_filter_backend,
)
from repro.grid import Decomposition2D, SphericalGrid
from repro.parallel import GENERIC, ProcessorMesh, Simulator
from repro.verify import tolerances


@pytest.fixture(scope="module")
def setup():
    grid = SphericalGrid(nlat=18, nlon=24)
    rng = np.random.default_rng(7)
    fields = {
        n: rng.standard_normal((grid.nlat, grid.nlon, 3))
        for n in ("u", "v", "pt", "q")
    }
    fields["ps"] = rng.standard_normal((grid.nlat, grid.nlon, 1))
    plan = make_filter_plan(grid)
    reference = {n: f.copy() for n, f in fields.items()}
    apply_serial_filter(plan, reference, method="fft")
    return grid, fields, plan, reference


def _run_backend(grid, fields, plan, backend_name, mesh_dims):
    mesh = ProcessorMesh(*mesh_dims)
    decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)
    backend = prepare_filter_backend(backend_name, plan, decomp)

    def program(ctx):
        local = {n: decomp.scatter(fields[n])[ctx.rank].copy() for n in fields}
        yield from backend.apply(ctx, local)
        return local

    res = Simulator(mesh.size, GENERIC).run(program)
    gathered = {
        n: decomp.gather([res.returns[r][n] for r in range(mesh.size)])
        for n in fields
    }
    return gathered, res


class TestSerialEquivalence:
    def test_serial_methods_agree(self, setup):
        grid, fields, plan, reference = setup
        conv = {n: f.copy() for n, f in fields.items()}
        apply_serial_filter(plan, conv, method="convolution")
        for n in fields:
            np.testing.assert_allclose(conv[n], reference[n], atol=tolerances.FILTER_ATOL)

    @pytest.mark.parametrize("backend", FILTER_BACKENDS)
    @pytest.mark.parametrize(
        "mesh_dims", [(1, 1), (2, 3), (3, 4), (1, 4), (3, 1)]
    )
    def test_parallel_matches_serial(self, setup, backend, mesh_dims):
        grid, fields, plan, reference = setup
        gathered, _ = _run_backend(grid, fields, plan, backend, mesh_dims)
        for n in fields:
            np.testing.assert_allclose(
                gathered[n], reference[n], atol=tolerances.FILTER_ATOL,
                err_msg=f"{backend} {mesh_dims} field {n}",
            )

    def test_uneven_decomposition(self, setup):
        """Mesh extents that do not divide the grid (like the paper's)."""
        grid, fields, plan, reference = setup
        gathered, _ = _run_backend(grid, fields, plan, "fft-lb", (4, 5))
        for n in fields:
            np.testing.assert_allclose(gathered[n], reference[n], atol=tolerances.FILTER_ATOL)


class TestCommunicationStructure:
    def test_ring_message_count(self, setup):
        """Ring variant: N(N-1) messages within each active processor row."""
        grid, fields, plan, _ = setup
        _, res = _run_backend(grid, fields, plan, "convolution-ring", (3, 4))
        # Rows 0 and 2 are active (filtered latitudes), row 1 idle:
        # 2 rows x 4*3 ring messages.
        assert res.trace.total_messages() == 2 * 4 * 3

    def test_tree_fewer_messages_than_ring(self, setup):
        grid, fields, plan, _ = setup
        _, ring = _run_backend(grid, fields, plan, "convolution-ring", (3, 4))
        _, tree = _run_backend(grid, fields, plan, "convolution-tree", (3, 4))
        assert tree.trace.total_messages() < ring.trace.total_messages()

    def test_tree_moves_more_than_fft(self, setup):
        """Per the paper's complexity table, the transpose FFT moves the
        least data of the line-assembling strategies."""
        grid, fields, plan, _ = setup
        _, tree = _run_backend(grid, fields, plan, "convolution-tree", (3, 4))
        _, fft = _run_backend(grid, fields, plan, "fft", (3, 4))
        assert fft.trace.total_bytes() < tree.trace.total_bytes()

    def test_lb_uses_idle_ranks(self, setup):
        """Without LB, the equatorial processor row computes nothing."""
        grid, fields, plan, _ = setup
        _, fft = _run_backend(grid, fields, plan, "fft", (3, 4))
        _, lb = _run_backend(grid, fields, plan, "fft-lb", (3, 4))
        mesh = ProcessorMesh(3, 4)
        middle = mesh.row_ranks(1)
        fft_mid = sum(fft.trace.ranks[r].compute_time for r in middle)
        lb_mid = sum(lb.trace.ranks[r].compute_time for r in middle)
        assert fft_mid == 0.0
        assert lb_mid > 0.0

    def test_lb_faster_at_scale(self):
        """The headline: balanced FFT beats unbalanced on a tall mesh."""
        grid = SphericalGrid(nlat=36, nlon=24)
        rng = np.random.default_rng(3)
        fields = {
            n: rng.standard_normal((36, 24, 3)) for n in ("u", "v", "pt", "q")
        }
        fields["ps"] = rng.standard_normal((36, 24, 1))
        plan = make_filter_plan(grid)
        mesh = ProcessorMesh(6, 2)
        decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)
        times = {}
        # Use the Paragon model: the flop-bound regime the paper studies
        # (on a very fast machine the balancer's extra messages can win).
        from repro.parallel import PARAGON

        for backend in ("convolution-ring", "fft", "fft-lb"):
            be = prepare_filter_backend(backend, plan, decomp)

            def program(ctx):
                local = {
                    n: decomp.scatter(fields[n])[ctx.rank].copy()
                    for n in fields
                }
                yield from be.apply(ctx, local)

            times[backend] = Simulator(mesh.size, PARAGON).run(program).elapsed
        assert times["fft-lb"] < times["fft"] < times["convolution-ring"]


class TestValidation:
    def test_unknown_backend(self, setup):
        grid, _, plan, _ = setup
        decomp = Decomposition2D(grid.nlat, grid.nlon, ProcessorMesh(1, 1))
        with pytest.raises(ValueError):
            prepare_filter_backend("dct", plan, decomp)

    def test_2d_field_rejected(self, setup):
        grid, fields, plan, _ = setup
        bad = {n: f.copy() for n, f in fields.items()}
        bad["ps"] = bad["ps"][:, :, 0]  # drop the layer axis
        decomp = Decomposition2D(grid.nlat, grid.nlon, ProcessorMesh(2, 2))
        backend = prepare_filter_backend("fft-lb", plan, decomp)

        def program(ctx):
            local = {n: decomp.scatter(bad[n])[ctx.rank].copy() for n in bad}
            yield from backend.apply(ctx, local)

        with pytest.raises(ValueError, match="3-D"):
            Simulator(4, GENERIC).run(program)
