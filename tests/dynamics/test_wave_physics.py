"""Physical validation of the dynamical core against wave theory.

The whole CFL/polar-filter story rests on the model actually carrying
gravity waves at ``c = sqrt(PHI_SCALE)``; these tests measure the wave
speed in the running nonlinear core and check geostrophic adjustment
behaviour.
"""

import numpy as np
import pytest

from repro import constants as const
from repro.dynamics.geometry import LocalGeometry
from repro.dynamics.state import ModelState, PHI_SCALE, PT_REFERENCE
from repro.dynamics.tendencies import DynamicsParams, compute_tendencies
from repro.dynamics.timestep import euler_step, leapfrog_step
from repro.grid.halo import pad_with_halo
from repro.grid.sphere import SphericalGrid


def _step_model(grid, geom, state, prev, dt, params):
    padded = {n: pad_with_halo(a) for n, a in state.fields().items()}
    tend = compute_tendencies(padded, geom, params)
    if prev is None:
        nxt = euler_step(state, tend, dt)
    else:
        nxt = leapfrog_step(prev, state, tend, dt, ra_coeff=0.05)
    nxt.v[-1] = 0.0
    return state, nxt


class TestGravityWaveSpeed:
    def test_simple_wave_travels_at_c(self):
        """A rightward simple wave (u' = phi'/c) moves at ~sqrt(PHI_SCALE).

        Measured by the phase shift of the equatorial zonal wavenumber-2
        component over a short integration (short enough that curvature
        and Coriolis barely act at the equator).
        """
        grid = SphericalGrid(16, 64)
        geom = LocalGeometry.from_grid(grid)
        params = DynamicsParams(diffusion=0.0)
        c = np.sqrt(PHI_SCALE)
        # High zonal wavenumber + wide envelope keep k >> l, so the
        # dispersive meridional contribution (omega^2 = c^2 (k^2 + l^2))
        # barely inflates the zonal phase speed.
        k_wave = 6

        state = ModelState.zeros(grid.nlat, grid.nlon, 1)
        lon = grid.lon_rad[None, :, None]
        lat = grid.lat_rad[:, None, None]
        envelope = np.exp(-(lat / 0.6) ** 2)  # broad tropical band
        dpt = 0.5 * envelope * np.cos(k_wave * lon)
        state.pt += dpt
        # Simple-wave relation: u' = phi' / c with phi' = PHI_SCALE*pt'/ref.
        state.u += (PHI_SCALE / PT_REFERENCE / c) * dpt

        dt = 0.2 * grid.dlon_m[grid.nlat // 2] / c
        nsteps = 16
        prev = None
        now = state
        for _ in range(nsteps):
            prev, now = _step_model(grid, geom, now, prev, dt, params)

        eq = grid.nlat // 2
        phase0 = np.angle(np.fft.rfft(dpt[eq, :, 0])[k_wave])
        phase1 = np.angle(np.fft.rfft(now.pt[eq, :, 0] - PT_REFERENCE)[k_wave])
        dphase = (phase0 - phase1) % (2 * np.pi)  # eastward = decreasing
        distance = dphase / k_wave * grid.radius * np.cos(grid.lat_rad[eq])
        measured_c = distance / (nsteps * dt)
        assert measured_c == pytest.approx(c, rel=0.25)

    def test_wave_speed_scales_with_phi(self):
        """Quadrupling PHI doubles the measured propagation speed."""
        grid = SphericalGrid(12, 48)
        geom = LocalGeometry.from_grid(grid)
        k_wave = 6
        speeds = {}
        for phi_scale in (PHI_SCALE, PHI_SCALE / 4):
            params = DynamicsParams(diffusion=0.0, phi_scale=phi_scale)
            c = np.sqrt(phi_scale)
            state = ModelState.zeros(grid.nlat, grid.nlon, 1)
            lon = grid.lon_rad[None, :, None]
            lat = grid.lat_rad[:, None, None]
            dpt = 0.5 * np.exp(-(lat / 0.6) ** 2) * np.cos(k_wave * lon)
            state.pt += dpt
            state.u += (phi_scale / PT_REFERENCE / c) * dpt
            dt = 0.2 * grid.dlon_m[grid.nlat // 2] / np.sqrt(PHI_SCALE)
            prev, now = None, state
            for _ in range(12):
                prev, now = _step_model(grid, geom, now, prev, dt, params)
            eq = grid.nlat // 2
            p0 = np.angle(np.fft.rfft(dpt[eq, :, 0])[k_wave])
            p1 = np.angle(
                np.fft.rfft(now.pt[eq, :, 0] - PT_REFERENCE)[k_wave]
            )
            dphase = (p0 - p1) % (2 * np.pi)
            speeds[phi_scale] = dphase
        ratio = speeds[PHI_SCALE] / speeds[PHI_SCALE / 4]
        assert ratio == pytest.approx(2.0, rel=0.3)


class TestGeostrophicTendency:
    def test_balanced_jet_nearly_steady(self):
        """A geostrophically balanced zonal jet has much smaller initial
        tendencies than the same jet without its balancing mass field."""
        grid = SphericalGrid(24, 32)
        geom = LocalGeometry.from_grid(grid)
        params = DynamicsParams(diffusion=0.0)

        lat = grid.lat_rad[:, None, None]
        u_jet = 10.0 * np.exp(-(((lat - 0.8) / 0.25) ** 2))

        # Integrate f*u = -dPhi/dy meridionally for the balancing pt.
        f = grid.coriolis[:, None, None]
        dphi_dy = -f * u_jet
        phi = np.cumsum(dphi_dy, axis=0) * grid.dlat_m
        pt_anom = phi * PT_REFERENCE / PHI_SCALE

        balanced = ModelState.zeros(grid.nlat, grid.nlon, 1)
        balanced.u += u_jet
        balanced.pt += pt_anom
        unbalanced = ModelState.zeros(grid.nlat, grid.nlon, 1)
        unbalanced.u += u_jet

        def v_tendency(state):
            padded = {n: pad_with_halo(a) for n, a in state.fields().items()}
            tend = compute_tendencies(padded, geom, params)
            # Compare away from the polar caps, where the metric floor acts.
            band = np.abs(grid.lat_deg) < 70
            return np.abs(tend["v"][band]).max()

        assert v_tendency(balanced) < 0.35 * v_tendency(unbalanced)
