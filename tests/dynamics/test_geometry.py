"""Tests for local geometry metrics."""

import numpy as np
import pytest

from repro.dynamics.geometry import LocalGeometry
from repro.grid.sphere import SphericalGrid


class TestFullGlobe:
    def test_padded_lengths(self, small_grid):
        g = LocalGeometry.from_grid(small_grid)
        n = small_grid.nlat
        assert g.lat_c.shape == (n + 2,)
        assert g.cos_n.shape == (n + 2,)
        assert g.nlat_local == n

    def test_polar_face_cosine_zero(self, small_grid):
        """The face at the pole closes the meridional flux."""
        g = LocalGeometry.from_grid(small_grid)
        assert g.cos_n[-2] == 0.0  # north face of the last interior row
        assert g.cos_n[-1] == 0.0  # ghost row face (clipped at the pole)

    def test_cos_floored(self, small_grid):
        g = LocalGeometry.from_grid(small_grid, cos_floor=0.05)
        assert g.cos_c.min() >= 0.05

    def test_diffusion_scale_unity_at_low_latitude(self, paper_grid):
        g = LocalGeometry.from_grid(paper_grid)
        mid = paper_grid.nlat // 2
        assert g.diff_scale[mid + 1] == pytest.approx(1.0)

    def test_diffusion_scale_small_at_poles(self, paper_grid):
        """Keeps nu*dt/dx^2 bounded where dx collapses."""
        g = LocalGeometry.from_grid(paper_grid)
        assert g.diff_scale[1] < 0.01

    def test_interior_col_shapes(self, small_grid):
        g = LocalGeometry.from_grid(small_grid)
        col = g.col(g.dx_c, ndim=3)
        assert col.shape == (small_grid.nlat, 1, 1)


class TestSubBlocks:
    def test_block_matches_global_slice(self, paper_grid):
        full = LocalGeometry.from_grid(paper_grid)
        block = LocalGeometry.from_grid(paper_grid, 30, 60)
        # Interior rows 30..59 of the block equal global rows 30..59.
        np.testing.assert_allclose(block.lat_c[1:-1], full.lat_c[31:61])
        np.testing.assert_allclose(block.cos_n[1:-1], full.cos_n[31:61])

    def test_ghost_rows_extend_block(self, paper_grid):
        full = LocalGeometry.from_grid(paper_grid)
        block = LocalGeometry.from_grid(paper_grid, 30, 60)
        assert block.lat_c[0] == pytest.approx(full.lat_c[30])
        assert block.lat_c[-1] == pytest.approx(full.lat_c[61])

    def test_invalid_block(self, small_grid):
        with pytest.raises(ValueError):
            LocalGeometry.from_grid(small_grid, 5, 5)
        with pytest.raises(ValueError):
            LocalGeometry.from_grid(small_grid, -1, 5)
