"""Tests for the finite-difference tendency kernel."""

import numpy as np
import pytest

from repro.dynamics.geometry import LocalGeometry
from repro.dynamics.state import ModelState, PT_REFERENCE
from repro.dynamics.tendencies import (
    DynamicsParams,
    compute_tendencies,
    dynamics_flops,
    dynamics_mem_bytes,
)
from repro.grid.halo import pad_with_halo
from repro.grid.sphere import SphericalGrid


def _padded_state(state: ModelState):
    return {name: pad_with_halo(arr) for name, arr in state.fields().items()}


@pytest.fixture
def grid():
    return SphericalGrid(16, 24)


@pytest.fixture
def geom(grid):
    return LocalGeometry.from_grid(grid)


class TestRestState:
    def test_uniform_rest_state_stationary(self, grid, geom):
        """No winds, uniform pt: every tendency vanishes."""
        state = ModelState.zeros(grid.nlat, grid.nlon, 3)
        tend = compute_tendencies(_padded_state(state), geom)
        for name, t in tend.items():
            np.testing.assert_allclose(t, 0.0, atol=1e-12, err_msg=name)

    def test_pressure_gradient_accelerates(self, grid, geom):
        """A zonal pt gradient drives u (geostrophic adjustment begins)."""
        state = ModelState.zeros(grid.nlat, grid.nlon, 1)
        state.pt[...] = PT_REFERENCE + 1.0 * np.sin(
            2 * np.pi * np.arange(grid.nlon) / grid.nlon
        )[None, :, None]
        tend = compute_tendencies(
            _padded_state(state), geom, DynamicsParams(diffusion=0.0)
        )
        assert np.abs(tend["u"]).max() > 0
        np.testing.assert_allclose(tend["v"][:-1], 0.0, atol=1e-10)

    def test_coriolis_turns_wind(self, grid, geom):
        state = ModelState.zeros(grid.nlat, grid.nlon, 1)
        state.u[...] = 10.0
        tend = compute_tendencies(
            _padded_state(state), geom, DynamicsParams(diffusion=0.0)
        )
        # Northern-hemisphere rows: f > 0, u > 0 -> dv/dt = -f u < 0.
        north = grid.lat_deg > 10
        assert np.all(tend["v"][north][:-1] < 0)


class TestConservation:
    def test_mass_conserved_by_flux_form(self, grid, geom, rng):
        """The discrete mass integral (cos-weighted, the scheme's own
        measure) is conserved exactly: closed poles + periodic longitude
        + telescoping fluxes.  Diffusion uses replicated ghost rows, so
        it conserves too."""
        state = ModelState.baroclinic_test(grid, 3)
        state.v[...] = rng.standard_normal(state.v.shape)
        state.v[-1] = 0.0
        tend = compute_tendencies(
            _padded_state(state), geom, DynamicsParams(diffusion=0.0)
        )
        w = geom.cos_c[1:-1][:, None, None]  # the scheme's row weights
        weighted = (tend["pt"] * w).sum()
        scale = (np.abs(tend["pt"]) * w).sum()
        assert abs(weighted) < 1e-12 * max(scale, 1e-30)

    def test_diffusion_residual_small(self, grid, geom, rng):
        """The latitude-scaled diffusion is not exactly conservative, but
        its mass residual is negligible at default settings."""
        state = ModelState.baroclinic_test(grid, 3)
        state.v[...] = rng.standard_normal(state.v.shape)
        state.v[-1] = 0.0
        tend = compute_tendencies(_padded_state(state), geom)
        w = geom.cos_c[1:-1][:, None, None]
        ratio = abs((tend["pt"] * w).sum()) / (np.abs(tend["pt"]) * w).sum()
        assert ratio < 1e-6

    def test_polar_v_tendency_zero(self, grid, geom, rng):
        state = ModelState.baroclinic_test(grid, 2)
        tend = compute_tendencies(_padded_state(state), geom)
        np.testing.assert_allclose(tend["v"][-1], 0.0)

    def test_ps_tracks_layer_mean(self, grid, geom):
        state = ModelState.baroclinic_test(grid, 4)
        tend = compute_tendencies(_padded_state(state), geom)
        expected = tend["pt"].mean(axis=2, keepdims=True)
        np.testing.assert_allclose(
            tend["ps"],
            expected * (1.0e5 / PT_REFERENCE),
            rtol=1e-12,
        )


class TestAccounting:
    def test_flop_count_scale(self):
        assert dynamics_flops(1000, 9) == pytest.approx(1550.0 * 9000)

    def test_mem_bytes_positive(self):
        assert dynamics_mem_bytes(100, 9) > 100 * 9 * 8

    def test_tendencies_shapes(self, grid, geom):
        state = ModelState.baroclinic_test(grid, 3)
        tend = compute_tendencies(_padded_state(state), geom)
        assert tend["u"].shape == (grid.nlat, grid.nlon, 3)
        assert tend["ps"].shape == (grid.nlat, grid.nlon, 1)
