"""Tests for the semi-implicit shallow-water stepper."""

import numpy as np
import pytest

from repro.dynamics.semi_implicit import SemiImplicitShallowWater
from repro.grid.sphere import SphericalGrid


@pytest.fixture(scope="module")
def grid():
    return SphericalGrid(20, 32)


def _clone(state):
    return {k: v.copy() for k, v in state.items()}


class TestOperators:
    def test_grad_of_constant_zero(self, grid):
        si = SemiImplicitShallowWater(grid, dt=100.0)
        phi = np.full(grid.shape, 3.0)
        np.testing.assert_allclose(si.grad_x(phi), 0.0)
        np.testing.assert_allclose(si.grad_y(phi)[:-1], 0.0)

    def test_divergence_of_zero_wind(self, grid):
        si = SemiImplicitShallowWater(grid, dt=100.0)
        z = np.zeros(grid.shape)
        np.testing.assert_allclose(si.divergence(z, z), 0.0)

    def test_divergence_closed_domain(self, grid, rng):
        """cos-weighted integral of the divergence vanishes: closed poles
        + periodic longitude."""
        si = SemiImplicitShallowWater(grid, dt=100.0)
        u = rng.standard_normal(grid.shape)
        v = rng.standard_normal(grid.shape)
        v[-1] = 0.0
        div = si.divergence(u, v)
        total = (si._cos_c * div).sum()
        scale = (si._cos_c * np.abs(div)).sum()
        assert abs(total) < 1e-12 * scale

    def test_helmholtz_self_adjoint_weighted(self, grid, rng):
        """<a, H b>_cos == <H a, b>_cos — the property CG needs."""
        si = SemiImplicitShallowWater(grid, dt=500.0)
        a = rng.standard_normal(grid.shape)
        b = rng.standard_normal(grid.shape)
        lhs = si._wdot(a, si.helmholtz(b))
        rhs = si._wdot(si.helmholtz(a), b)
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_helmholtz_solve_residual(self, grid, rng):
        si = SemiImplicitShallowWater(grid, dt=500.0)
        rhs = rng.standard_normal(grid.shape)
        x = si.solve_helmholtz(rhs)
        residual = rhs - si.helmholtz(x)
        assert np.abs(residual).max() < 1e-7 * np.abs(rhs).max()


class TestConsistency:
    def test_matches_explicit_at_small_dt(self, grid):
        """Both schemes discretise the same PDE: O(dt^2) agreement."""
        si = SemiImplicitShallowWater(
            grid, dt=0.1 * SemiImplicitShallowWater(grid, dt=1.0).explicit_cfl_dt(),
            ra_coeff=0.0,
        )
        s0 = si.initial_state()
        pa, na = _clone(s0), _clone(s0)
        pb, nb = _clone(s0), _clone(s0)
        for _ in range(5):
            nxt = si.step(pa, na)
            pa, na = na, nxt
            nxt = si.explicit_step(pb, nb)
            pb, nb = nb, nxt
        for k in na:
            scale = np.abs(nb[k]).max() + 1e-12
            assert np.abs(na[k] - nb[k]).max() < 0.05 * scale

    def test_rest_state_stays_at_rest(self, grid):
        si = SemiImplicitShallowWater(grid, dt=1000.0, ra_coeff=0.0)
        z = np.zeros(grid.shape)
        state = {"u": z.copy(), "v": z.copy(), "phi": z.copy()}
        nxt = si.step(_clone(state), _clone(state))
        for k in nxt:
            np.testing.assert_allclose(nxt[k], 0.0, atol=1e-12)


class TestStability:
    def test_stable_far_beyond_explicit_cfl(self, grid):
        """The headline: 10x the polar CFL bound, no filter, no blow-up."""
        probe = SemiImplicitShallowWater(grid, dt=1.0)
        dt = 10 * probe.explicit_cfl_dt()
        si = SemiImplicitShallowWater(grid, dt=dt)
        final, energies = si.run(50)
        assert np.isfinite(energies[-1])
        assert energies[-1] <= 1.5 * energies[0]

    def test_explicit_blows_up_at_that_dt(self, grid):
        probe = SemiImplicitShallowWater(grid, dt=1.0)
        dt = 10 * probe.explicit_cfl_dt()
        si = SemiImplicitShallowWater(grid, dt=dt)
        state = si.initial_state()
        prev, now = _clone(state), state
        blew = False
        for _ in range(50):
            nxt = si.explicit_step(prev, now)
            prev, now = now, nxt
            if not np.isfinite(now["phi"]).all() or np.abs(now["phi"]).max() > 1e8:
                blew = True
                break
        assert blew

    def test_energy_never_grows_unfiltered_modes(self, grid):
        """With RA off, the semi-implicit step conserves energy to a few
        per cent over a moderate run (neutral scheme)."""
        probe = SemiImplicitShallowWater(grid, dt=1.0)
        si = SemiImplicitShallowWater(
            grid, dt=2 * probe.explicit_cfl_dt(), ra_coeff=0.0
        )
        _, energies = si.run(40)
        assert max(energies) < 1.2 * energies[0]

    def test_polar_v_pinned(self, grid):
        si = SemiImplicitShallowWater(grid, dt=1000.0)
        state = si.initial_state()
        prev, now = _clone(state), state
        for _ in range(5):
            nxt = si.step(prev, now)
            prev, now = now, nxt
        np.testing.assert_allclose(now["v"][-1], 0.0)


class TestValidation:
    def test_bad_parameters(self, grid):
        with pytest.raises(ValueError):
            SemiImplicitShallowWater(grid, dt=-1.0)
        with pytest.raises(ValueError):
            SemiImplicitShallowWater(grid, dt=10.0, phi_mean=0.0)
