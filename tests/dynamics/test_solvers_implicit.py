"""Tests for the linear solvers and implicit diffusion extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics.geometry import LocalGeometry
from repro.dynamics.implicit import (
    explicit_diffusion_unstable_dt,
    implicit_horizontal_diffusion,
    implicit_horizontal_diffusion_parallel,
    implicit_vertical_diffusion,
)
from repro.grid.decomposition import Decomposition2D
from repro.grid.halo import pad_with_halo
from repro.grid.sphere import SphericalGrid
from repro.parallel import GENERIC, ProcessorMesh, Simulator
from repro.solvers import (
    HelmholtzOperator,
    cg_serial,
    diffusion_system,
    solve_cyclic_tridiagonal,
    solve_tridiagonal,
)


def _dense_tridiagonal(lower, diag, upper, cyclic=False):
    n = diag.size
    a = np.diag(diag)
    for k in range(1, n):
        a[k, k - 1] = lower[k]
        a[k - 1, k] = upper[k - 1]
    if cyclic:
        a[0, n - 1] = lower[0]
        a[n - 1, 0] = upper[n - 1]
    return a


class TestTridiagonal:
    @given(n=st.integers(2, 12), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_solve(self, n, seed):
        rng = np.random.default_rng(seed)
        lower = rng.uniform(-0.4, 0.4, n)
        upper = rng.uniform(-0.4, 0.4, n)
        diag = 1.0 + rng.uniform(0.2, 1.0, n)  # diagonally dominant
        rhs = rng.standard_normal(n)
        x = solve_tridiagonal(lower, diag, upper, rhs)
        a = _dense_tridiagonal(lower, diag, upper)
        np.testing.assert_allclose(a @ x, rhs, atol=1e-10)

    def test_batched_matches_loop(self, rng):
        n, batch = 6, 10
        lower = rng.uniform(-0.3, 0.3, (batch, n))
        upper = rng.uniform(-0.3, 0.3, (batch, n))
        diag = 1.5 + rng.random((batch, n))
        rhs = rng.standard_normal((batch, n))
        x = solve_tridiagonal(lower, diag, upper, rhs)
        for b in range(batch):
            xb = solve_tridiagonal(lower[b], diag[b], upper[b], rhs[b])
            np.testing.assert_allclose(x[b], xb)

    @given(n=st.integers(3, 12), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_cyclic_matches_dense(self, n, seed):
        rng = np.random.default_rng(seed)
        lower = rng.uniform(-0.3, 0.3, n)
        upper = rng.uniform(-0.3, 0.3, n)
        diag = 2.0 + rng.random(n)
        rhs = rng.standard_normal(n)
        x = solve_cyclic_tridiagonal(lower, diag, upper, rhs)
        a = _dense_tridiagonal(lower, diag, upper, cyclic=True)
        np.testing.assert_allclose(a @ x, rhs, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_tridiagonal(np.zeros(3), np.ones(4), np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            solve_cyclic_tridiagonal(
                np.zeros(2), np.ones(2), np.zeros(2), np.ones(2)
            )

    def test_diffusion_system_validation(self):
        with pytest.raises(ValueError):
            diffusion_system(1, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            diffusion_system(4, -1.0, 1.0, 1.0)


class TestVerticalDiffusion:
    def test_conserves_column_integral(self, rng):
        field = rng.standard_normal((5, 6, 8)) + 10.0
        out = implicit_vertical_diffusion(field, dt=1e4, kappa=10.0, dz=500.0)
        np.testing.assert_allclose(
            out.sum(axis=2), field.sum(axis=2), rtol=1e-10
        )

    def test_smooths_profiles(self, rng):
        field = np.zeros((2, 2, 10))
        field[..., 5] = 1.0  # a spike
        out = implicit_vertical_diffusion(field, dt=1e5, kappa=100.0, dz=500.0)
        assert out[..., 5].max() < 1.0
        assert out.min() >= -1e-12

    def test_stable_for_huge_dt(self):
        """Unconditional stability — the whole point of going implicit."""
        field = np.random.default_rng(0).standard_normal((3, 4, 6))
        out = implicit_vertical_diffusion(field, dt=1e9, kappa=1e3, dz=100.0)
        assert np.isfinite(out).all()
        assert np.abs(out).max() <= np.abs(field).max() + 1e-9

    def test_single_layer_noop(self, rng):
        field = rng.standard_normal((3, 4, 1))
        out = implicit_vertical_diffusion(field, dt=100.0, kappa=1.0)
        np.testing.assert_array_equal(out, field)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            implicit_vertical_diffusion(np.zeros((3, 4)), 1.0, 1.0)


class TestHelmholtzCG:
    @pytest.fixture
    def grid(self):
        return SphericalGrid(12, 16)

    def test_alpha_zero_is_identity(self, grid, rng):
        geom = LocalGeometry.from_grid(grid)
        op = HelmholtzOperator(geom, alpha=0.0)
        f = rng.standard_normal((12, 16, 2))
        np.testing.assert_allclose(op(pad_with_halo(f)), f)

    def test_cg_solves_helmholtz(self, grid, rng):
        geom = LocalGeometry.from_grid(grid)
        alpha = 0.3 * float(geom.dx_c[1:-1].min()) ** 2
        op = HelmholtzOperator(geom, alpha=alpha)
        truth = rng.standard_normal((12, 16, 2))
        rhs = op(pad_with_halo(truth))
        result = cg_serial(op, rhs, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, truth, atol=1e-6)

    def test_implicit_diffusion_smooths(self, grid):
        geom = LocalGeometry.from_grid(grid)
        field = np.zeros((12, 16, 1))
        field[6, 8, 0] = 1.0
        res = implicit_horizontal_diffusion(field, geom, dt=1e4, kappa=1e5)
        assert res.converged
        assert res.x[6, 8, 0] < 1.0
        assert res.x.sum() > 0

    def test_dt_beyond_explicit_limit(self, grid):
        """The implicit solve is fine at time steps that would blow up the
        (unscaled) explicit operator."""
        geom = LocalGeometry.from_grid(grid)
        kappa = 1e5
        dt = 100.0 * explicit_diffusion_unstable_dt(geom, kappa)
        field = np.random.default_rng(1).standard_normal((12, 16, 1))
        res = implicit_horizontal_diffusion(field, geom, dt=dt, kappa=kappa)
        assert res.converged
        assert np.isfinite(res.x).all()

    @pytest.mark.parametrize("dims", [(1, 1), (2, 2), (3, 4)])
    def test_parallel_matches_serial(self, grid, rng, dims):
        geom_full = LocalGeometry.from_grid(grid)
        field = rng.standard_normal((12, 16, 2))
        dt, kappa = 2e3, 1e5
        serial = implicit_horizontal_diffusion(field, geom_full, dt, kappa)

        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)

        def program(ctx):
            sub = decomp.subdomain(ctx.rank)
            geom = LocalGeometry.from_grid(grid, sub.lat0, sub.lat1)
            local = decomp.scatter(field)[ctx.rank]
            result = yield from implicit_horizontal_diffusion_parallel(
                ctx, decomp, geom, local, dt, kappa
            )
            return result

        res = Simulator(mesh.size, GENERIC).run(program)
        gathered = decomp.gather([res.returns[r].x for r in range(mesh.size)])
        np.testing.assert_allclose(gathered, serial.x, atol=1e-8)
        # Identical iteration counts: the parallel solve is the serial
        # algorithm, just distributed.
        assert all(
            res.returns[r].iterations == serial.iterations
            for r in range(mesh.size)
        )
