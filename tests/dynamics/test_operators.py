"""Tests for finite-difference operators on padded arrays."""

import numpy as np
import pytest

from repro.dynamics.operators import (
    avg_to_u,
    avg_to_v,
    ddx_centered,
    ddx_face,
    ddy_centered,
    ddy_face,
    interior,
    laplacian5,
    u_at_v_points,
    v_at_u_points,
)
from repro.grid.halo import pad_with_halo


class TestDerivatives:
    def test_ddx_linear_exact(self):
        """Centered difference is exact for linear-in-i fields."""
        nlat, nlon = 4, 8
        f = np.arange(nlon, dtype=float)[None, :] * np.ones((nlat, 1))
        # Use a manually padded array (not periodic) to keep linearity.
        p = np.pad(f, 1, mode="reflect", reflect_type="odd")
        dx = np.full(nlat, 2.0)
        out = ddx_centered(p, dx)
        np.testing.assert_allclose(out, 0.5)

    def test_ddy_linear_exact(self):
        nlat, nlon = 6, 4
        f = np.arange(nlat, dtype=float)[:, None] * np.ones((1, nlon))
        p = np.pad(f, 1, mode="reflect", reflect_type="odd")
        np.testing.assert_allclose(ddy_centered(p, 3.0), 1.0 / 3.0)

    def test_face_differences(self):
        f = np.arange(6, dtype=float)[None, :] * np.ones((3, 1))
        p = np.pad(f, 1, mode="edge")
        p[:, 0] = p[:, 1] - 1
        p[:, -1] = p[:, -2] + 1
        out = ddx_face(p, np.ones(3))
        np.testing.assert_allclose(out, 1.0)

    def test_ddy_face(self):
        f = 2.0 * np.arange(5, dtype=float)[:, None] * np.ones((1, 3))
        p = np.pad(f, 1, mode="edge")
        p[0] = p[1] - 2
        p[-1] = p[-2] + 2
        np.testing.assert_allclose(ddy_face(p, 1.0), 2.0)

    def test_laplacian_of_constant_zero(self):
        p = np.full((6, 7), 4.2)
        np.testing.assert_allclose(laplacian5(p, np.ones(4), 1.0), 0.0)

    def test_laplacian_of_quadratic(self):
        x = np.arange(8, dtype=float)
        f = np.ones((5, 1)) * x[None, :] ** 2
        p = np.pad(f, 1, mode="reflect", reflect_type="odd")
        # d2/dx2 of x^2 = 2 (interior columns away from the odd reflection)
        out = laplacian5(p, np.ones(5), 1e9)  # dy huge: y-term negligible
        np.testing.assert_allclose(out[:, 1:-1], 2.0, atol=1e-6)


class TestAverages:
    def test_avg_operators_on_constant(self):
        p = np.full((5, 6), 3.0)
        np.testing.assert_allclose(avg_to_u(p), 3.0)
        np.testing.assert_allclose(avg_to_v(p), 3.0)
        np.testing.assert_allclose(u_at_v_points(p), 3.0)
        np.testing.assert_allclose(v_at_u_points(p), 3.0)

    def test_interior_view(self, rng):
        f = rng.standard_normal((4, 5))
        p = pad_with_halo(f)
        np.testing.assert_array_equal(interior(p), f)

    def test_v_at_u_stagger_geometry(self, rng):
        """v_at_u averages the four v points around each u point."""
        p = rng.standard_normal((5, 6))
        out = v_at_u_points(p)
        j, i = 1, 2  # interior indices of the padded array
        expected = 0.25 * (p[j, i] + p[j, i + 1] + p[j - 1, i] + p[j - 1, i + 1])
        assert out[j - 1, i - 1] == pytest.approx(expected)

    def test_u_at_v_stagger_geometry(self, rng):
        p = rng.standard_normal((5, 6))
        out = u_at_v_points(p)
        j, i = 2, 3
        expected = 0.25 * (p[j, i] + p[j, i - 1] + p[j + 1, i] + p[j + 1, i - 1])
        assert out[j - 1, i - 1] == pytest.approx(expected)
