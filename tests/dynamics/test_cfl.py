"""Tests for the CFL analysis — the filter's raison d'etre."""

import numpy as np
import pytest

from repro.dynamics.cfl import (
    CflReport,
    cfl_violation_rows,
    filter_speedup_factor,
    gravity_wave_speed,
    max_stable_dt,
    stable_dt_by_latitude,
)
from repro.grid.sphere import SphericalGrid


class TestStableDt:
    def test_dt_shrinks_poleward(self, paper_grid):
        dts = stable_dt_by_latitude(paper_grid)
        mid = paper_grid.nlat // 2
        assert dts[0] < dts[mid] / 10
        assert dts[-1] < dts[mid] / 10

    def test_unfiltered_dt_tiny(self, paper_grid):
        """Without filtering the global dt is set by the last row."""
        dt = max_stable_dt(paper_grid, 90.0)
        assert dt < 30.0  # seconds — uselessly small

    def test_filtered_dt_useful(self, paper_grid):
        dt = max_stable_dt(paper_grid, 45.0)
        assert dt > 300.0  # several minutes

    def test_speedup_factor_large(self, paper_grid):
        """Filtering buys an order of magnitude in time step."""
        assert filter_speedup_factor(paper_grid, 45.0) > 10

    def test_no_rows_selected(self, paper_grid):
        with pytest.raises(ValueError):
            max_stable_dt(paper_grid, critical_lat_deg=-1.0)

    def test_custom_wave_speed(self, paper_grid):
        slow = max_stable_dt(paper_grid, 45.0, wave_speed=10.0)
        fast = max_stable_dt(paper_grid, 45.0, wave_speed=100.0)
        assert slow == pytest.approx(10 * fast)


class TestViolations:
    def test_violating_rows_polar(self, paper_grid):
        dt = max_stable_dt(paper_grid, 45.0)
        rows = cfl_violation_rows(paper_grid, dt)
        lats = paper_grid.lat_deg[rows]
        assert rows.size > 0
        assert np.all(np.abs(lats) > 44.0)

    def test_no_violations_for_tiny_dt(self, paper_grid):
        assert cfl_violation_rows(paper_grid, 0.001).size == 0

    def test_report(self, paper_grid):
        dt = max_stable_dt(paper_grid, 45.0) * 0.5
        rep = CflReport.for_grid(paper_grid, dt)
        assert rep.unfiltered_dt < rep.filtered_dt_45
        assert rep.violating_rows > 0
        assert rep.wave_speed == pytest.approx(gravity_wave_speed())
