"""Tests for the leapfrog time integration."""

import numpy as np
import pytest

from repro.dynamics.state import ModelState, PROGNOSTIC_NAMES
from repro.dynamics.timestep import (
    IntegrationLog,
    euler_step,
    leapfrog_step,
    pin_polar_v,
)
from repro.grid.sphere import SphericalGrid


def _constant_tendencies(state, value):
    return {
        name: np.full_like(getattr(state, name), value)
        for name in PROGNOSTIC_NAMES
    }


class TestEuler:
    def test_linear_update(self):
        state = ModelState.zeros(4, 6, 2)
        tend = _constant_tendencies(state, 2.0)
        new = euler_step(state, tend, dt=10.0)
        np.testing.assert_allclose(new.u, 20.0)
        assert new.time == pytest.approx(10.0)

    def test_original_untouched(self):
        state = ModelState.zeros(4, 6, 2)
        u0 = state.u.copy()
        euler_step(state, _constant_tendencies(state, 1.0), 1.0)
        np.testing.assert_array_equal(state.u, u0)


class TestLeapfrog:
    def test_two_dt_jump(self):
        prev = ModelState.zeros(4, 6, 1)
        now = euler_step(prev, _constant_tendencies(prev, 1.0), 1.0)
        tend = _constant_tendencies(now, 1.0)
        nxt = leapfrog_step(prev, now, tend, dt=1.0, ra_coeff=0.0)
        np.testing.assert_allclose(nxt.u, prev.u + 2.0)
        assert nxt.time == pytest.approx(2.0)

    def test_ra_filter_mutates_now(self):
        prev = ModelState.zeros(4, 6, 1)
        now = prev.copy()
        now.u[...] = 1.0  # a pure 2dt oscillation candidate
        tend = _constant_tendencies(now, 0.0)
        leapfrog_step(prev, now, tend, dt=1.0, ra_coeff=0.1)
        # RA pulls `now` toward the prev/next average.
        assert np.all(now.u < 1.0)

    def test_ra_damps_computational_mode(self):
        """The even/odd-step splitting of leapfrog decays under RA."""
        prev = ModelState.zeros(2, 4, 1)
        now = prev.copy()
        now.pt[...] += 1.0  # seed the 2-dt computational mode
        amplitude = [np.abs(now.pt - prev.pt).max()]
        for _ in range(30):
            tend = _constant_tendencies(now, 0.0)
            nxt = leapfrog_step(prev, now, tend, 1.0, ra_coeff=0.1)
            prev, now = now, nxt
            amplitude.append(np.abs(now.pt - prev.pt).max())
        assert amplitude[-1] < 0.1 * amplitude[0]


class TestPolarPinning:
    def test_pins_only_edge_blocks(self, rng):
        v = rng.standard_normal((5, 6, 2))
        keep = v.copy()
        pin_polar_v(v, is_north_edge_block=False)
        np.testing.assert_array_equal(v, keep)
        pin_polar_v(v, is_north_edge_block=True)
        np.testing.assert_allclose(v[-1], 0.0)
        np.testing.assert_array_equal(v[:-1], keep[:-1])


class TestIntegrationLog:
    def test_records_and_stability(self):
        log = IntegrationLog()
        state = ModelState.zeros(4, 6, 1)
        log.record(state)
        assert log.stable
        state.u[0, 0, 0] = 1e6
        log.record(state)
        assert not log.stable


class TestInitialFields:
    def test_block_consistency(self, rng):
        """A rank's block of the initial condition equals the global slice
        — the foundation of serial/parallel equivalence."""
        from repro.dynamics.state import initial_fields_block

        grid = SphericalGrid(12, 16)
        full = initial_fields_block(grid.lat_rad, grid.lon_rad, 3, seed=9)
        block = initial_fields_block(
            grid.lat_rad[4:9], grid.lon_rad[2:11], 3, seed=9
        )
        for name, arr in block.items():
            np.testing.assert_array_equal(arr, full[name][4:9, 2:11])

    def test_seed_changes_fields(self):
        from repro.dynamics.state import initial_fields_block

        grid = SphericalGrid(8, 12)
        a = initial_fields_block(grid.lat_rad, grid.lon_rad, 2, seed=1)
        b = initial_fields_block(grid.lat_rad, grid.lon_rad, 2, seed=2)
        assert not np.allclose(a["pt"], b["pt"])

    def test_state_diagnostics(self):
        grid = SphericalGrid(8, 12)
        state = ModelState.baroclinic_test(grid, 2)
        assert state.is_finite()
        assert state.max_wind() > 0
        assert state.total_mass(grid) > 0
        assert state.shape == (8, 12, 2)

    def test_copy_independent(self):
        grid = SphericalGrid(8, 12)
        state = ModelState.baroclinic_test(grid, 2)
        cp = state.copy()
        cp.u[...] += 1
        assert not np.allclose(cp.u, state.u)
