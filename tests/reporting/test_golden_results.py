"""Golden regression tests: archived tables must match fresh recomputes.

``benchmarks/results/*.txt`` are the checked-in renderings the paper
comparison rests on.  The virtual machine is deterministic, so a fresh
recompute must reproduce them byte for byte; silent drift in
``reporting/`` or ``util/tables.py`` fails here loudly.

Only the cheap, fully deterministic experiments are recomputed — the
expensive sweeps stay in ``benchmarks/`` (and the bench gate covers
their tracked ratios).
"""

from __future__ import annotations

import difflib
import os

import pytest

from repro.reporting.experiments import run_fig2_3, run_fig4_6, run_tables1_3

_RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
    "results",
)


def _assert_matches_golden(result):
    path = os.path.join(_RESULTS_DIR, f"{result.ident}.txt")
    assert os.path.exists(path), f"golden file missing: {path}"
    golden = open(path).read()
    fresh = result.render() + "\n"
    if fresh != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(), fresh.splitlines(),
                fromfile=f"golden:{result.ident}.txt",
                tofile="recomputed", lineterm="",
            )
        )
        pytest.fail(
            f"{result.ident} drifted from the archived golden rendering:\n{diff}"
        )


def test_fig4_6_scheme_walkthrough_matches_golden():
    _assert_matches_golden(run_fig4_6())


def test_fig2_3_row_redistribution_matches_golden():
    # the archived file is the 8x30 (paper mesh) run: the benchmark
    # archives both meshes and the second write wins
    _assert_matches_golden(run_fig2_3(mesh_dims=(8, 30)))


def test_tables1_3_physics_lb_matches_golden():
    _assert_matches_golden(run_tables1_3())
