"""Tests for the markdown regeneration report."""

import pytest

from repro import __main__ as cli
from repro.reporting.report import (
    QUICK_ORDER,
    REPORT_ORDER,
    generate_report,
    write_report,
)
from repro.reporting.experiments import EXPERIMENTS


class TestOrders:
    def test_report_order_covers_all_paper_artifacts(self):
        paper = {
            "fig1", "fig2_3", "fig4_6", "tables1_3",
            "table4", "table5", "table6", "table7",
            "table8", "table9", "table10", "table11",
        }
        assert paper <= set(REPORT_ORDER)

    def test_all_orders_resolvable(self):
        assert set(REPORT_ORDER) <= set(EXPERIMENTS)
        assert set(QUICK_ORDER) <= set(EXPERIMENTS)


class TestGeneration:
    def test_quick_report_structure(self):
        text = generate_report(quick=True)
        assert text.startswith("# Regeneration report")
        for ident in QUICK_ORDER:
            assert f"## {ident}" in text
        assert "total regeneration time" in text

    def test_explicit_subset(self):
        text = generate_report(idents=["fig4_6"])
        assert "## fig4_6" in text
        assert "## fig2_3" not in text

    def test_unknown_ident(self):
        with pytest.raises(KeyError):
            generate_report(idents=["table99"])

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", idents=["fig4_6"])
        assert path.exists()
        assert "pairwise" in path.read_text()

    def test_cli_report_quick(self, capsys):
        assert cli.main(["report", "--quick"]) == 0
        assert "# Regeneration report" in capsys.readouterr().out

    def test_cli_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.md"
        assert cli.main(["report", "--quick", str(target)]) == 0
        assert target.exists()
