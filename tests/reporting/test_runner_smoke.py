"""Small-parameter smoke tests of the heavy experiment runners.

The full-size regenerations live under ``benchmarks/``; here each runner
executes with reduced meshes/steps so the unit suite covers the code
paths (table assembly, data dictionaries, CLI) quickly.
"""

import pytest

from repro import __main__ as cli
from repro.parallel import T3D
from repro.reporting.experiments import (
    run_agcm_timing_table,
    run_fig1,
    run_filtering_table,
    run_sp2_supplementary,
)


class TestFig1Small:
    def test_runs_on_small_meshes(self):
        result = run_fig1(meshes=((2, 2), (2, 4)), nsteps=4)
        assert set(result.data) == {4, 8}
        for row in result.data.values():
            assert 0 < row["dynamics_fraction"] < 1
            assert 0 < row["filtering_fraction"] < 1
        assert "Figure 1" in result.render()


class TestAgcmTableSmall:
    def test_speedups_relative_to_first_mesh(self):
        result = run_agcm_timing_table(
            T3D, "fft-lb", meshes=((1, 1), (2, 2)), nsteps=4
        )
        assert result.data[(1, 1)]["speedup"] == pytest.approx(1.0)
        assert result.data[(2, 2)]["speedup"] > 1.5
        assert result.data[(2, 2)]["total"] < result.data[(1, 1)]["total"]


class TestFilteringTableSmall:
    def test_column_ordering_small(self):
        result = run_filtering_table(
            T3D, nlayers=4, meshes=((2, 2), (2, 4)), napps=1
        )
        for dims, row in result.data.items():
            assert row["convolution-ring"] > row["fft-lb"], dims

    def test_table_mentions_layers(self):
        result = run_filtering_table(T3D, nlayers=4, meshes=((2, 2),), napps=1)
        assert "2 x 2.5 x 4" in result.render()


class TestSp2Small:
    def test_new_beats_old(self):
        result = run_sp2_supplementary(meshes=((2, 2),), nsteps=4)
        per = result.data[(2, 2)]
        assert per["new"].dynamics < per["old"].dynamics


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table8" in out and "fig4_6" in out

    def test_help(self, capsys):
        assert cli.main([]) == 0
        assert "Experiments:" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert cli.main(["table99"]) == 2

    def test_run_one(self, capsys):
        assert cli.main(["fig4_6"]) == 0
        out = capsys.readouterr().out
        assert "pairwise" in out
