"""Small-parameter smoke tests of the heavy experiment runners.

The full-size regenerations live under ``benchmarks/``; here each runner
executes with reduced meshes/steps so the unit suite covers the code
paths (table assembly, data dictionaries, CLI) quickly.
"""

import pytest

from repro import __main__ as cli
from repro.parallel import T3D
from repro.reporting.experiments import (
    run_agcm_timing_table,
    run_fig1,
    run_filtering_table,
    run_sp2_supplementary,
)


class TestFig1Small:
    def test_runs_on_small_meshes(self):
        result = run_fig1(meshes=((2, 2), (2, 4)), nsteps=4)
        assert set(result.data) == {4, 8}
        for row in result.data.values():
            assert 0 < row["dynamics_fraction"] < 1
            assert 0 < row["filtering_fraction"] < 1
        assert "Figure 1" in result.render()


class TestAgcmTableSmall:
    def test_speedups_relative_to_first_mesh(self):
        result = run_agcm_timing_table(
            T3D, "fft-lb", meshes=((1, 1), (2, 2)), nsteps=4
        )
        assert result.data[(1, 1)]["speedup"] == pytest.approx(1.0)
        assert result.data[(2, 2)]["speedup"] > 1.5
        assert result.data[(2, 2)]["total"] < result.data[(1, 1)]["total"]


class TestFilteringTableSmall:
    def test_column_ordering_small(self):
        result = run_filtering_table(
            T3D, nlayers=4, meshes=((2, 2), (2, 4)), napps=1
        )
        for dims, row in result.data.items():
            assert row["convolution-ring"] > row["fft-lb"], dims

    def test_table_mentions_layers(self):
        result = run_filtering_table(T3D, nlayers=4, meshes=((2, 2),), napps=1)
        assert "2 x 2.5 x 4" in result.render()


class TestSp2Small:
    def test_new_beats_old(self):
        result = run_sp2_supplementary(meshes=((2, 2),), nsteps=4)
        per = result.data[(2, 2)]
        assert per["new"].dynamics < per["old"].dynamics


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table8" in out and "fig4_6" in out

    def test_help(self, capsys):
        assert cli.main([]) == 0
        assert "Experiments:" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert cli.main(["table99"]) == 2

    def test_unknown_suggests_close_match(self, capsys):
        assert cli.main(["tables13"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'tables1_3'" in err
        assert "try 'list'" in err

    def test_typo_late_in_list_runs_nothing(self, capsys):
        # validation is up-front: the valid experiment must not run
        assert cli.main(["fig4_6", "fautls"]) == 2
        captured = capsys.readouterr()
        assert "did you mean 'faults'" in captured.err
        assert "regenerated" not in captured.out

    def test_run_one(self, capsys):
        assert cli.main(["fig4_6"]) == 0
        out = capsys.readouterr().out
        assert "pairwise" in out


@pytest.mark.faults
class TestFaultsExperiment:
    def test_overhead_matrix_and_straggler_table(self):
        from repro.reporting.experiments import run_faults

        result = run_faults(nsteps=6)
        assert len(result.data["overhead"]) == 9  # 3 scenarios x 3 intervals
        by_key = {
            (r["scenario"], r["checkpoint_every"]): r
            for r in result.data["overhead"]
        }
        assert by_key[("fault-free", 0)]["overhead_pct"] == pytest.approx(0.0)
        fail_cold = by_key[("drops + rank failure", 0)]
        fail_ckpt = by_key[("drops + rank failure", 2)]
        assert fail_cold["restarts"] == 1 and fail_ckpt["restarts"] == 1
        # checkpointing must beat re-running from step 0 after a failure
        assert fail_ckpt["total_elapsed"] < fail_cold["total_elapsed"]
        static, mitigated = result.data["straggler"]
        assert mitigated["imbalance"] < static["imbalance"]
        rendered = result.render()
        assert "Fault-tolerance overhead" in rendered
        assert "scheme 3" in rendered
