"""Tests for the experiment registry (fast experiments only; the heavy
table sweeps run under benchmarks/)."""

import numpy as np
import pytest

from repro.reporting.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_fig2_3,
    run_fig4_6,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        """Every table and figure of the paper has a registered runner."""
        expected = {
            "fig1", "fig2_3", "fig4_6", "tables1_3",
            "table4", "table5", "table6", "table7",
            "table8", "table9", "table10", "table11",
            "blockarray", "advection_opt", "pointwise",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestFig2_3:
    def test_balanced_rows_within_one(self):
        result = run_fig2_3(mesh_dims=(4, 8))
        rows = result.data["balanced_rows"]
        assert max(rows) - min(rows) <= 1
        assert sum(rows) == result.data["total_units"]

    def test_natural_has_idle_ranks(self):
        result = run_fig2_3(mesh_dims=(4, 8))
        assert (result.data["natural_lines"] == 0).sum() > 0
        assert (result.data["balanced_lines"] == 0).sum() == 0

    def test_render_contains_tables(self):
        text = run_fig2_3().render()
        assert "Figure 2" in text and "Figure 3" in text


class TestFig4_6:
    def test_paper_worked_example_exact(self):
        """The paper's Figure 6: {65,24,38,15} -> {40,31,31,40} ->
        {36,35,35,36}."""
        result = run_fig4_6()
        history = result.data["scheme3_history"]
        np.testing.assert_allclose(history[1], [40, 31, 31, 40])
        np.testing.assert_allclose(history[2], [36, 35, 35, 36])

    def test_scheme1_exact_balance_but_quadratic(self):
        result = run_fig4_6()
        s1 = result.data["scheme1"]
        assert s1.imbalance_after == pytest.approx(0.0)
        assert s1.message_count == 4 * 3

    def test_scheme2_linear_messages(self):
        result = run_fig4_6()
        s2 = result.data["scheme2"]
        assert s2.message_count <= 3
        assert s2.imbalance_after < 1e-9

    def test_scheme3_cheapest_communication(self):
        """Scheme 3 trades a little residual imbalance for pairwise-only
        messages — the paper's adoption argument."""
        result = run_fig4_6()
        s1 = result.data["scheme1"]
        s3 = result.data["scheme3"]
        assert s3.message_count < s1.message_count
        assert s3.imbalance_after < 0.05
