"""Regression tests for the kernel-layer bugfixes.

Two bugs rode in with the BLAS-style wrappers and the pointwise oracle:

* ``blas_axpy`` silently doubled the result when ``y`` aliased the
  module's cached scratch buffer (``alpha * x`` was written into the
  scratch — i.e. into ``y`` — before the accumulate);
* ``pointwise_multiply_naive`` (and ``_tiled``'s default allocation)
  returned float64 for float32 inputs, so the semantics oracle disagreed
  in dtype with the vectorised variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import kernels


def _scratch_for(shape, dtype=float) -> np.ndarray:
    """The internal axpy scratch buffer for (shape, dtype), populated."""
    kernels.blas_axpy(1.0, np.ones(shape, dtype=dtype),
                      np.zeros(shape, dtype=dtype))
    return kernels._AXPY_POOL.scratch(shape, dtype)


class TestAxpyAliasing:
    def test_y_aliases_scratch_buffer(self):
        """The ISSUE's repro: axpy into the cached scratch itself."""
        buf = _scratch_for((4,))
        buf[:] = 0.0
        kernels.blas_axpy(2.0, np.ones(4), buf)
        np.testing.assert_array_equal(buf, np.full(4, 2.0))

    def test_y_view_of_scratch_buffer(self):
        buf = _scratch_for((6,))
        view = buf[:6]  # full-length view, distinct array object
        view[:] = 1.0
        kernels.blas_axpy(3.0, np.ones(6), view)
        np.testing.assert_array_equal(view, np.full(6, 4.0))

    def test_x_is_scratch_buffer_is_safe(self):
        buf = _scratch_for((5,))
        buf[:] = 2.0
        y = np.ones(5)
        kernels.blas_axpy(0.5, buf, y)
        np.testing.assert_array_equal(y, np.full(5, 2.0))

    def test_unaliased_fast_path_still_correct(self):
        rng = np.random.default_rng(7)
        x, y = rng.standard_normal(32), rng.standard_normal(32)
        expect = y + 1.5 * x
        kernels.blas_axpy(1.5, x, y)
        np.testing.assert_allclose(y, expect)

    def test_scratch_pool_is_bounded(self):
        for n in range(3 * kernels._AXPY_BUF_MAX):
            kernels.blas_axpy(1.0, np.ones(n + 2), np.zeros(n + 2))
        assert len(kernels._AXPY_POOL) <= kernels._AXPY_BUF_MAX

    def test_scratch_pool_reuses_hot_entry(self):
        buf = _scratch_for((9,))
        kernels.blas_axpy(1.0, np.ones(9), np.zeros(9))
        assert kernels._AXPY_POOL.scratch((9,), float) is buf


class TestPointwiseDtype:
    VARIANTS = (
        kernels.pointwise_multiply_naive,
        kernels.pointwise_multiply_reshaped,
        kernels.pointwise_multiply_tiled,
    )

    @pytest.mark.parametrize("fn", VARIANTS, ids=lambda f: f.__name__)
    def test_float32_round_trip(self, fn):
        rng = np.random.default_rng(11)
        a = rng.standard_normal(24).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        out = fn(a, b)
        assert out.dtype == np.float32

    def test_float32_variants_agree_exactly(self):
        rng = np.random.default_rng(13)
        a = rng.standard_normal(36).astype(np.float32)
        b = rng.standard_normal(9).astype(np.float32)
        ref = kernels.pointwise_multiply_naive(a, b)
        for fn in self.VARIANTS[1:]:
            got = fn(a, b)
            assert got.dtype == ref.dtype
            np.testing.assert_array_equal(got, ref)

    def test_mixed_dtype_promotes_like_numpy(self):
        a = np.ones(8, dtype=np.float32)
        b = np.ones(4, dtype=np.float64)
        for fn in self.VARIANTS:
            assert fn(a, b).dtype == np.float64

    def test_float64_unchanged(self):
        a, b = np.ones(8), np.ones(4)
        for fn in self.VARIANTS:
            assert fn(a, b).dtype == np.float64
