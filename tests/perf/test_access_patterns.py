"""Tests for the layout address-stream generators."""

import numpy as np
import pytest

from repro.perf.access_patterns import (
    ADVECTION_LOOP_MIX,
    ITEM,
    laplace_flops,
    laplace_stream_block,
    laplace_stream_separate,
    mixed_loops_block,
    mixed_loops_separate,
)


class TestLaplaceStreams:
    def test_stream_lengths_equal(self):
        n, m = 8, 3
        sep = laplace_stream_separate(n, m)
        blk = laplace_stream_block(n, m)
        assert sep.size == blk.size == (n - 2) ** 3 * (7 * m + 1)

    def test_separate_addresses_within_arrays(self):
        n, m = 8, 3
        sep = laplace_stream_separate(n, m)
        # m input arrays + 1 result array
        assert sep.max() < ITEM * (m + 1) * n**3
        assert sep.min() >= 0

    def test_block_interleaving(self):
        """In the block layout, field f and f+1 at the same point are
        adjacent elements."""
        n, m = 6, 4
        blk = laplace_stream_block(n, m)
        per_cell = 7 * m + 1
        # First cell: centre accesses of fields 0 and 1 are ITEM apart.
        f0_center = blk[0]
        f1_center = blk[7]
        assert f1_center - f0_center == ITEM

    def test_separate_field_stride(self):
        n, m = 6, 2
        sep = laplace_stream_separate(n, m)
        f0_center = sep[0]
        f1_center = sep[7]
        assert f1_center - f0_center == ITEM * n**3

    def test_stagger_shifts_bases(self):
        n, m = 6, 2
        plain = laplace_stream_separate(n, m, stagger_lines=0)
        staggered = laplace_stream_separate(n, m, stagger_lines=2)
        assert staggered[7] - plain[7] == 2 * 32

    def test_flops(self):
        assert laplace_flops(32, 8) == 14.0 * 8 * 30**3


class TestMixedLoops:
    def test_loop_mix_fields_in_range(self):
        m = 12
        for loop in ADVECTION_LOOP_MIX:
            assert all(0 <= f < m for f in loop)

    def test_stream_length(self):
        n, m = 6, 12
        loops = ((0, 1), (2,))
        sep = mixed_loops_separate(n, m, loops)
        expected = (n - 2) ** 3 * ((2 + 1) + (1 + 1))
        assert sep.size == expected

    def test_block_and_separate_same_length(self):
        n, m = 6, 12
        sep = mixed_loops_separate(n, m, ADVECTION_LOOP_MIX)
        blk = mixed_loops_block(n, m, ADVECTION_LOOP_MIX)
        assert sep.size == blk.size

    def test_block_reads_more_lines_for_sparse_loops(self):
        """A 2-of-12-field loop touches more distinct 32-byte lines in the
        block layout — the waste that kills its advantage."""
        n, m = 8, 12
        loops = ((0, 1),)
        blk = mixed_loops_block(n, m, loops)
        sep = mixed_loops_separate(n, m, loops, stagger_lines=3)
        blk_lines = np.unique(blk // 32).size
        sep_lines = np.unique(sep // 32).size
        assert blk_lines > sep_lines
