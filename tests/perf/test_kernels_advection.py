"""Tests for single-node kernels and advection variants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.advection_opt import (
    ALL_VARIANTS,
    AdvectionWorkspace,
    advection_optimized,
    reference_advection,
)
from repro.perf.kernels import (
    blas_axpy,
    blas_copy,
    blas_scal,
    pointwise_flops,
    pointwise_multiply_2d,
    pointwise_multiply_naive,
    pointwise_multiply_reshaped,
    pointwise_multiply_tiled,
)


class TestPointwiseMultiply:
    @pytest.fixture
    def ab(self, rng):
        return rng.standard_normal(120), rng.standard_normal(12)

    def test_naive_semantics(self):
        a = np.arange(6.0)
        b = np.array([10.0, 100.0])
        out = pointwise_multiply_naive(a, b)
        np.testing.assert_allclose(out, [0, 100, 20, 300, 40, 500])

    def test_all_variants_agree(self, ab):
        a, b = ab
        ref = pointwise_multiply_naive(a, b)
        np.testing.assert_allclose(pointwise_multiply_reshaped(a, b), ref)
        np.testing.assert_allclose(pointwise_multiply_tiled(a, b), ref)

    def test_tiled_uses_out_buffer(self, ab):
        a, b = ab
        out = np.empty(a.size)
        result = pointwise_multiply_tiled(a, b, out)
        assert result is out

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            pointwise_multiply_naive(np.zeros(10), np.zeros(3))
        with pytest.raises(ValueError):
            pointwise_multiply_reshaped(np.zeros(10), np.zeros(3))

    def test_2d_constant_s(self, rng):
        a = rng.standard_normal((5, 6, 3))
        b = rng.standard_normal(5)
        out = pointwise_multiply_2d(a, b, 1)
        np.testing.assert_allclose(out, a[:, :, 1] * b[:, None])

    def test_2d_s_equals_j(self, rng):
        a = rng.standard_normal((5, 4, 4))
        b = rng.standard_normal(5)
        out = pointwise_multiply_2d(a, b, "j")
        for j in range(4):
            np.testing.assert_allclose(out[:, j], a[:, j, j] * b)

    def test_2d_validation(self, rng):
        a = rng.standard_normal((5, 4, 4))
        with pytest.raises(ValueError):
            pointwise_multiply_2d(a, np.zeros(3), 0)
        with pytest.raises(ValueError):
            pointwise_multiply_2d(a, np.zeros(5), "k")

    @given(m=st.integers(1, 16), reps=st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence(self, m, reps):
        rng = np.random.default_rng(m * 31 + reps)
        a = rng.standard_normal(m * reps)
        b = rng.standard_normal(m)
        np.testing.assert_allclose(
            pointwise_multiply_reshaped(a, b),
            pointwise_multiply_naive(a, b),
        )

    def test_flops(self):
        assert pointwise_flops(100) == 100.0


class TestBlasWrappers:
    def test_copy(self, rng):
        x = rng.standard_normal(10)
        y = np.empty(10)
        blas_copy(x, y)
        np.testing.assert_array_equal(x, y)

    def test_scal(self):
        x = np.ones(5)
        blas_scal(3.0, x)
        np.testing.assert_allclose(x, 3.0)

    def test_axpy(self, rng):
        x = rng.standard_normal(8)
        y0 = rng.standard_normal(8)
        y = y0.copy()
        blas_axpy(2.5, x, y)
        np.testing.assert_allclose(y, y0 + 2.5 * x)


class TestAdvectionVariants:
    @pytest.fixture
    def inputs(self, rng):
        shape = (7, 9, 2)
        return (
            rng.standard_normal(shape),
            rng.standard_normal(shape),
            rng.standard_normal(shape),
            1e5 * (1 + rng.random(7)),
            1.1e5,
        )

    @pytest.mark.parametrize("name", list(ALL_VARIANTS))
    def test_variant_matches_reference(self, inputs, name):
        f, u, v, dx, dy = inputs
        ref = reference_advection(f, u, v, dx, dy)
        got = ALL_VARIANTS[name](f, u, v, dx, dy)
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_workspace_reuse(self, inputs):
        f, u, v, dx, dy = inputs
        ws = AdvectionWorkspace(f.shape)
        a = advection_optimized(f, u, v, dx, dy, ws).copy()
        b = advection_optimized(f, u, v, dx, dy, ws)
        np.testing.assert_array_equal(a, b)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_vectorized_property(self, seed):
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(3, 8)), int(rng.integers(4, 10)), 2)
        f = rng.standard_normal(shape)
        u = rng.standard_normal(shape)
        v = rng.standard_normal(shape)
        dx = 1e5 * (1 + rng.random(shape[0]))
        np.testing.assert_allclose(
            ALL_VARIANTS["vectorized"](f, u, v, dx, 1e5),
            ALL_VARIANTS["hoisted"](f, u, v, dx, 1e5),
            atol=1e-10,
        )
