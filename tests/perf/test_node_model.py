"""Tests for the single-node layout predictions (paper Section 3.4)."""

import pytest

from repro.parallel import PARAGON, T3D
from repro.perf.node_model import (
    compare_advection_layouts,
    compare_laplace_layouts,
)


@pytest.fixture(scope="module")
def laplace_results():
    return {
        m.name: compare_laplace_layouts(m, n=16, m=8) for m in (PARAGON, T3D)
    }


@pytest.fixture(scope="module")
def advection_results():
    return {
        m.name: compare_advection_layouts(m, n=16, m=12)
        for m in (PARAGON, T3D)
    }


class TestLaplaceLayouts:
    def test_block_wins_on_both_machines(self, laplace_results):
        """Paper: block array 5x faster on Paragon, 2.6x on T3D."""
        for name, c in laplace_results.items():
            assert c.block_speedup > 1.2, name

    def test_paragon_gains_more(self, laplace_results):
        assert (
            laplace_results["paragon"].block_speedup
            > laplace_results["t3d"].block_speedup
        )

    def test_separate_arrays_thrash(self, laplace_results):
        c = laplace_results["paragon"]
        assert c.separate_misses > 3 * c.block_misses


class TestAdvectionLayouts:
    def test_no_block_advantage(self, advection_results):
        """Paper: 'did not show any advantage of using the block array'."""
        for name, c in advection_results.items():
            assert c.block_speedup < 1.2, name

    def test_block_can_underperform(self, advection_results):
        """'For some sizes ... the block array underperformed'."""
        assert any(
            c.block_speedup < 1.0 for c in advection_results.values()
        )
