"""Tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import PARAGON, T3D
from repro.perf.cache_sim import CacheSim, CacheStats, loop_time, miss_time


class TestBasics:
    def test_cold_miss_then_hit(self):
        sim = CacheSim(size=256, line=32, assoc=2)
        assert sim.access(0) is False  # cold miss
        assert sim.access(8) is True   # same line
        assert sim.access(40) is False  # next line

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheSim(100, 32, 2)  # size not multiple
        with pytest.raises(ValueError):
            CacheSim(0, 32, 2)

    def test_for_machine(self):
        sim = CacheSim.for_machine(PARAGON)
        assert sim.size == PARAGON.cache_size
        assert sim.assoc == PARAGON.cache_assoc

    def test_reset_clears(self):
        sim = CacheSim(128, 32, 1)
        sim.access(0)
        sim.reset()
        assert sim.access(0) is False


class TestLRU:
    def test_lru_eviction_order(self):
        # Direct-mapped-per-set with 2 ways: lines 0, N, 2N map to set 0.
        sim = CacheSim(size=128, line=32, assoc=2)  # 2 sets
        set_stride = 2 * 32  # lines 2 apart share a set
        a, b, c = 0, set_stride, 2 * set_stride
        sim.access(a)
        sim.access(b)
        sim.access(a)        # refresh a; b is now LRU
        sim.access(c)        # evicts b
        assert sim.access(a) is True
        assert sim.access(b) is False  # was evicted

    def test_direct_mapped_conflict(self):
        sim = CacheSim(size=64, line=32, assoc=1)  # 2 sets
        stats = sim.simulate(np.array([0, 64, 0, 64, 0, 64]))
        assert stats.misses == 6  # ping-pong, never hits

    def test_working_set_fits(self):
        """Repeated scan of an array smaller than the cache: only cold
        misses."""
        sim = CacheSim(size=1024, line=32, assoc=4)
        addresses = np.tile(np.arange(0, 512, 8), 5)
        stats = sim.simulate(addresses)
        assert stats.misses == 512 // 32

    def test_streaming_larger_than_cache(self):
        sim = CacheSim(size=256, line=32, assoc=2)
        addresses = np.arange(0, 8192, 8)
        stats = sim.simulate(addresses)
        assert stats.misses == 8192 // 32

    @given(
        addrs=st.lists(st.integers(0, 10_000), min_size=0, max_size=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_misses_bounded(self, addrs):
        sim = CacheSim(size=512, line=32, assoc=2)
        stats = sim.simulate(list(addrs))
        assert 0 <= stats.misses <= stats.accesses == len(addrs)

    @given(addrs=st.lists(st.integers(0, 4000), min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_bigger_cache_never_more_misses(self, addrs):
        """LRU caches have the inclusion property within a set layout that
        doubles associativity at fixed set count."""
        small = CacheSim(size=256, line=32, assoc=2)   # 4 sets
        large = CacheSim(size=512, line=32, assoc=4)   # 4 sets, more ways
        m_small = small.simulate(list(addrs)).misses
        m_large = large.simulate(list(addrs)).misses
        assert m_large <= m_small


class TestTiming:
    def test_stats_properties(self):
        s = CacheStats(accesses=10, misses=3)
        assert s.hits == 7
        assert s.miss_rate == pytest.approx(0.3)

    def test_miss_time(self):
        s = CacheStats(accesses=10, misses=4)
        assert miss_time(s, PARAGON) == pytest.approx(
            4 * PARAGON.cache_miss_penalty
        )

    def test_loop_time_combines(self):
        s = CacheStats(accesses=10, misses=0)
        assert loop_time(s, 1e6, T3D) == pytest.approx(1e6 / T3D.flop_rate)
