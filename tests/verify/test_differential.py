"""Unit tests for the differential-testing engine (synthetic pairs only).

The real registry is exercised under ``pytest -m differential``; here we
pin down the engine mechanics — sampling, comparison, shrinking,
reporting — with cheap arithmetic pairs whose minimal counterexample is
known exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify.differential import (
    DEFAULT_SEED,
    Counterexample,
    DifferentialFailure,
    ImplementationPair,
    ParamSpace,
    assert_pair,
    case_seed_for,
    check_pair,
    check_pairs,
    compare_outputs,
    main,
    run_case,
    shrink_config,
)


def _sum_pair(break_at=None, atol=1e-12):
    """Reference sums a random vector; candidate breaks for n >= break_at."""
    space = ParamSpace({"n": (1, 20)})

    def ref(config, rng):
        return rng.standard_normal(config["n"]).sum()

    def cand(config, rng):
        out = rng.standard_normal(config["n"]).sum()
        if break_at is not None and config["n"] >= break_at:
            out += 0.1
        return out

    return ImplementationPair("sum", space, ref, cand, atol=atol, rtol=0.0)


# ----------------------------------------------------------------------
# ParamSpace
# ----------------------------------------------------------------------

def test_sample_respects_bounds_and_constraint():
    space = ParamSpace(
        {"a": (1, 6), "b": (2, 9)}, constraint=lambda c: c["a"] < c["b"]
    )
    rng = np.random.default_rng(0)
    for _ in range(50):
        config = space.sample(rng)
        assert 1 <= config["a"] <= 6
        assert 2 <= config["b"] <= 9
        assert config["a"] < config["b"]
        assert space.is_valid(config)


def test_sample_is_deterministic_per_seed():
    space = ParamSpace({"a": (0, 100), "b": (0, 100)})
    draws1 = [space.sample(np.random.default_rng(7)) for _ in range(1)]
    draws2 = [space.sample(np.random.default_rng(7)) for _ in range(1)]
    assert draws1 == draws2


def test_bad_bounds_rejected():
    with pytest.raises(ValueError, match="low 5 > high 2"):
        ParamSpace({"a": (5, 2)})


def test_impossible_constraint_raises():
    space = ParamSpace({"a": (1, 3)}, constraint=lambda c: False)
    with pytest.raises(RuntimeError, match="could not sample"):
        space.sample(np.random.default_rng(0), max_tries=10)


def test_shrink_candidates_are_valid_and_strictly_simpler():
    space = ParamSpace(
        {"a": (1, 20), "b": (1, 20)}, constraint=lambda c: c["a"] <= c["b"]
    )
    config = {"a": 10, "b": 15}
    cands = list(space.shrink_candidates(config))
    assert cands, "a non-minimal config must have shrink candidates"
    for cand in cands:
        assert space.is_valid(cand)
        assert cand != config
        # exactly one parameter moved, strictly toward its lower bound
        changed = [k for k in config if cand[k] != config[k]]
        assert len(changed) == 1
        assert cand[changed[0]] < config[changed[0]]


def test_shrink_candidates_empty_at_lower_bounds():
    space = ParamSpace({"a": (3, 9)})
    assert list(space.shrink_candidates({"a": 3})) == []


# ----------------------------------------------------------------------
# compare_outputs
# ----------------------------------------------------------------------

def test_compare_equal_nested_structures():
    out = {"x": np.arange(6.0).reshape(2, 3), "y": [1.0, (2, 3)], "s": "ok",
           "flag": True, "none": None}
    assert compare_outputs(out, out, atol=0.0, rtol=0.0) is None


def test_compare_reports_path_of_mismatch():
    ref = {"x": [np.zeros(3), np.zeros(3)]}
    cand = {"x": [np.zeros(3), np.array([0.0, 1.0, 0.0])]}
    detail = compare_outputs(ref, cand, atol=1e-12, rtol=0.0)
    assert detail is not None and "output['x'][1]" in detail


def test_compare_key_and_shape_and_length_mismatches():
    assert "key sets differ" in compare_outputs({"a": 1}, {"b": 1}, 0, 0)
    assert "shape" in compare_outputs(np.zeros(3), np.zeros(4), 0, 0)
    assert "length" in compare_outputs([1], [1, 2], 0, 0)
    assert "type mismatch" in compare_outputs({"a": 1}, [1], 0, 0)


def test_compare_respects_tolerance():
    a, b = np.ones(4), np.ones(4) + 1e-11
    assert compare_outputs(a, b, atol=1e-10, rtol=0.0) is None
    assert compare_outputs(a, b, atol=1e-12, rtol=0.0) is not None


def test_compare_bools_are_not_numeric():
    assert compare_outputs(True, False, atol=10.0, rtol=10.0) is not None
    assert compare_outputs(True, True, atol=0.0, rtol=0.0) is None


def test_compare_nan_never_equal():
    assert compare_outputs(np.array([np.nan]), np.array([np.nan]), 1.0, 1.0)


# ----------------------------------------------------------------------
# seeds and cases
# ----------------------------------------------------------------------

def test_case_seed_is_deterministic_and_distinct():
    s0 = case_seed_for(DEFAULT_SEED, "pair", 0)
    assert s0 == case_seed_for(DEFAULT_SEED, "pair", 0)
    seeds = {case_seed_for(DEFAULT_SEED, "pair", i) for i in range(10)}
    assert len(seeds) == 10
    assert case_seed_for(DEFAULT_SEED, "other", 0) != s0


def test_run_case_shares_the_input_stream():
    # reference and candidate draw identical data, so the pure-sum pair
    # agrees bit-for-bit even with atol 0
    pair = _sum_pair(atol=0.0)
    assert run_case(pair, {"n": 13}, case_seed=42) is None


def test_run_case_turns_exceptions_into_mismatches():
    def boom(config, rng):
        raise RuntimeError("kaboom")

    pair = ImplementationPair(
        "boom", ParamSpace({"n": (1, 4)}), _sum_pair().reference, boom
    )
    detail = run_case(pair, {"n": 2}, case_seed=1)
    assert "candidate raised RuntimeError: kaboom" in detail


# ----------------------------------------------------------------------
# check / shrink / assert
# ----------------------------------------------------------------------

def test_check_pair_passes_clean_pair():
    report = check_pair(_sum_pair(), nconfigs=8)
    assert report.ok and report.cases_run == 8
    assert len(report.configs) == 8
    assert "PASS" in str(report)


def test_check_pair_shrinks_to_exact_minimal_config():
    report = check_pair(_sum_pair(break_at=7), nconfigs=10)
    assert not report.ok
    cx = report.counterexample
    assert cx.config == {"n": 7}, "greedy shrink must find the threshold"
    assert cx.original_config["n"] >= 7
    assert cx.shrink_steps >= 1
    # the printed form carries everything needed to reproduce
    text = str(cx)
    assert "MINIMAL COUNTEREXAMPLE" in text
    assert "case_seed" in text and str(cx.case_seed) in text


def test_check_pair_without_shrink_keeps_original():
    report = check_pair(_sum_pair(break_at=7), nconfigs=10, shrink=False)
    assert not report.ok
    assert report.counterexample.config == report.counterexample.original_config
    assert report.counterexample.shrink_steps == 0


def test_shrink_config_rejects_passing_config():
    with pytest.raises(ValueError, match="passing configuration"):
        shrink_config(_sum_pair(break_at=7), {"n": 3}, case_seed=1)


def test_assert_pair_raises_differential_failure():
    with pytest.raises(DifferentialFailure) as err:
        assert_pair(_sum_pair(break_at=2), nconfigs=5)
    assert isinstance(err.value.counterexample, Counterexample)
    assert "MINIMAL COUNTEREXAMPLE" in str(err.value)


def test_check_pairs_does_not_stop_on_failure():
    reports = check_pairs([_sum_pair(break_at=1), _sum_pair()], nconfigs=3)
    assert [r.ok for r in reports] == [False, True]


def test_failures_reproduce_from_the_printed_seed():
    report = check_pair(_sum_pair(break_at=7), nconfigs=10)
    cx = report.counterexample
    detail = run_case(_sum_pair(break_at=7), cx.config, cx.case_seed)
    assert detail is not None


# ----------------------------------------------------------------------
# registry sanity (imports pairs, but runs nothing expensive)
# ----------------------------------------------------------------------

def test_registry_names_unique_and_described():
    from repro.verify.pairs import default_pairs, pair_by_name

    pairs = default_pairs()
    names = [p.name for p in pairs]
    assert len(names) == len(set(names))
    assert len(pairs) >= 12
    for pair in pairs:
        assert pair.description, f"{pair.name} needs a description"
        assert pair.space.bounds
    assert pair_by_name(names[0]).name == names[0]
    with pytest.raises(KeyError):
        pair_by_name("no-such-pair")


def test_cli_list_and_unknown_pair(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "agcm-serial-vs-parallel" in out
    assert main(["--pairs", "definitely-not-registered"]) == 2
