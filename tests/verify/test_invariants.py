"""Simulator conservation laws: positive cases and planted violations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.decomposition import Decomposition2D
from repro.model.config import AGCMConfig
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import GENERIC, Event, ProcessorMesh, Simulator
from repro.verify.invariants import (
    InvariantViolation,
    assert_sim_invariants,
    check_bytes_conservation,
    check_clock_identity,
    check_comm_matrix_symmetry,
    check_events,
    check_sim_result,
)


def _pairwise_exchange(ctx, n):
    """Ranks 2k <-> 2k+1 swap equal-sized payloads (symmetric pattern)."""
    data = np.full(n, float(ctx.rank))
    peer = ctx.rank ^ 1
    if peer < ctx.size:
        if ctx.rank < peer:
            yield from ctx.send(peer, data)
            got = yield from ctx.recv(peer)
        else:
            got = yield from ctx.recv(peer)
            yield from ctx.send(peer, data)
        return float(np.sum(got))
    return 0.0


def _ring_allgather(ctx, n):
    out = yield from ctx.allgather(np.full(n, float(ctx.rank)))
    return len(out)


@pytest.fixture
def agcm_result():
    cfg = AGCMConfig(
        nlat=12, nlon=16, nlayers=1, physics_every=2, dt_safety=0.3, seed=11
    )
    mesh = ProcessorMesh(2, 2)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    sim = Simulator(mesh.size, GENERIC, record_events=True)
    return sim.run(agcm_rank_program, cfg, decomp, 3)


def test_agcm_run_satisfies_all_invariants(agcm_result):
    assert check_sim_result(agcm_result) == []
    assert_sim_invariants(agcm_result, label="tiny agcm")


def test_pairwise_exchange_has_symmetric_comm_matrix():
    res = Simulator(4, GENERIC, record_events=True).run(_pairwise_exchange, 8)
    assert_sim_invariants(res, symmetric=True)


def test_ring_allgather_conserves_but_is_not_symmetric():
    res = Simulator(4, GENERIC, record_events=True).run(_ring_allgather, 8)
    assert check_bytes_conservation(res.trace) == []
    assert check_clock_identity(res) == []
    assert check_events(res) == []
    # rank i only ever sends to i+1: legitimately asymmetric
    violations = check_comm_matrix_symmetry(res.trace)
    assert violations and "symmetry" in violations[0]


def test_single_rank_run_is_trivially_conserving():
    def lone(ctx):
        yield from ctx.compute(flops=1000.0)
        return ctx.rank

    res = Simulator(1, GENERIC, record_events=True).run(lone)
    assert_sim_invariants(res, symmetric=True)


def test_planted_byte_leak_is_detected(agcm_result):
    agcm_result.trace.ranks[0].bytes_sent += 1
    violations = check_bytes_conservation(agcm_result.trace)
    assert violations and "byte conservation" in violations[0]


def test_planted_message_leak_is_detected(agcm_result):
    agcm_result.trace.ranks[0].messages_received += 2
    violations = check_bytes_conservation(agcm_result.trace)
    assert any("message conservation" in v for v in violations)


def test_planted_clock_drift_is_detected(agcm_result):
    agcm_result.trace.ranks[1].compute_time += 1.0
    violations = check_clock_identity(agcm_result)
    assert any("clock identity: rank 1" in v for v in violations)


def test_planted_bogus_event_is_detected(agcm_result):
    agcm_result.trace.events.append(
        Event(rank=0, kind="send", start=0.0, end=agcm_result.elapsed + 5.0,
              peer=1, nbytes=64)
    )
    violations = check_events(agcm_result)
    assert any("outside the run window" in v for v in violations)
    assert any("events vs accounting" in v for v in violations)


def test_assert_lists_every_violation(agcm_result):
    agcm_result.trace.ranks[0].bytes_sent += 1
    agcm_result.trace.ranks[1].compute_time += 1.0
    with pytest.raises(InvariantViolation) as err:
        assert_sim_invariants(agcm_result, label="tampered")
    text = str(err.value)
    assert text.startswith("[tampered]")
    assert "byte conservation" in text and "clock identity" in text


def test_faulty_run_satisfies_generalised_conservation():
    """Drops + retransmissions still balance exactly (sent + retrans ==
    received + dropped), and retry events match the counters."""
    from repro.faults import FaultPlan, LinkFault

    plan = FaultPlan(seed=9, link_faults=(LinkFault(drop_rate=0.4),))
    sim = Simulator(4, GENERIC, record_events=True, faults=plan)

    res = sim.run(_pairwise_exchange, 512)
    assert check_sim_result(res) == []
    tr = res.trace
    dropped = sum(r.messages_dropped for r in tr.ranks)
    assert dropped > 0, "40% drop rate produced no drops"
    assert dropped == sum(r.messages_retransmitted for r in tr.ranks)


def test_planted_unbalanced_drop_is_detected(agcm_result):
    agcm_result.trace.ranks[0].bytes_dropped += 128
    agcm_result.trace.ranks[0].messages_dropped += 1
    violations = check_bytes_conservation(agcm_result.trace)
    assert any("retry completeness" in v for v in violations)
    assert any("byte conservation" in v for v in violations)


def test_planted_retry_event_mismatch_is_detected(agcm_result):
    agcm_result.trace.events.append(
        Event(rank=0, kind="retry", start=0.0, end=0.0, peer=1, nbytes=64)
    )
    violations = check_events(agcm_result)
    assert any("retry events" in v for v in violations)
