"""Sanity checks on the central tolerance policy."""

from __future__ import annotations

from repro.verify import tolerances


def test_exact_means_exact():
    assert tolerances.EXACT == 0.0


def test_all_tolerances_are_small_nonnegative_floats():
    for name in dir(tolerances):
        if name.isupper():
            value = getattr(tolerances, name)
            assert isinstance(value, float), name
            if name.startswith("GUARD_"):
                # Guard health bounds cap *physical drift*, not floating
                # point noise — tight relative to 1, not to an ulp.
                assert 0.0 < value < 1.0, f"{name}={value} is not a bound"
            else:
                assert (
                    0.0 <= value < 1e-6
                ), f"{name}={value} is not a tight tolerance"


def test_policy_ordering():
    # single kernels are tighter than accumulated field comparisons
    assert tolerances.KERNEL_ATOL < tolerances.FIELD_ATOL
    assert tolerances.SPECTRAL_ATOL < tolerances.FILTER_ATOL
    assert tolerances.FIELD_ATOL < tolerances.FIELD_ATOL_LOOSE
