"""Schema, trajectory and gating logic of the benchmark-regression gate.

The fast tests here use synthetic metrics; the ``bench_gate``-marked
tests actually recompute the deterministic benchmarks and exercise the
``tools/bench_gate.py`` CLI end to end.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.verify import bench_record as br

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
_GATE = os.path.join(_REPO_ROOT, "tools", "bench_gate.py")


def _fake_metrics(**overrides):
    metrics = {name: 2.0 for name in br.TRACKED_RATIOS}
    metrics["agcm_old_total_s_per_day"] = 1000.0
    metrics.update(overrides)
    return metrics


def _entry(**overrides):
    return br.make_entry(_fake_metrics(**overrides), timestamp="2026-08-06T00:00:00")


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------

def test_make_entry_is_valid():
    assert br.validate_entry(_entry()) == []


def test_validate_catches_missing_keys_and_bad_values():
    entry = _entry()
    del entry["metrics"]
    assert any("missing key 'metrics'" in p for p in br.validate_entry(entry))

    entry = _entry()
    entry["schema_version"] = 99
    assert any("schema_version" in p for p in br.validate_entry(entry))

    entry = _entry()
    entry["metrics"]["bad"] = "not a number"
    assert any("'bad'" in p for p in br.validate_entry(entry))

    entry = _entry()
    del entry["metrics"][br.TRACKED_RATIOS[0]]
    assert any("missing from metrics" in p for p in br.validate_entry(entry))

    assert br.validate_entry([1, 2]) == ["entry is list, expected dict"]


# ----------------------------------------------------------------------
# trajectory file
# ----------------------------------------------------------------------

def test_missing_file_loads_as_empty_trajectory(tmp_path):
    traj = br.load_trajectory(str(tmp_path / "nope.json"))
    assert traj == br.empty_trajectory()
    assert br.baseline_entry(traj) is None


def test_save_load_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_agcm.json")
    traj = br.empty_trajectory()
    traj["entries"].append(_entry())
    br.save_trajectory(path, traj)
    loaded = br.load_trajectory(path)
    assert loaded == traj
    assert br.baseline_entry(loaded) == traj["entries"][-1]


def test_non_trajectory_file_rejected(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError, match="not a benchmark trajectory"):
        br.load_trajectory(str(path))


def test_invalid_entry_fails_load_with_actionable_error(tmp_path):
    """A hand-edited entry fails at load, naming the entry and problem,
    instead of KeyError-ing deep inside the baseline comparison."""
    path = str(tmp_path / "BENCH_agcm.json")
    traj = br.empty_trajectory()
    good = _entry()
    bad = dict(_entry(), metrics="not-a-dict")
    traj["entries"] = [good, bad]
    with open(path, "w") as fh:
        json.dump(traj, fh)
    with pytest.raises(ValueError) as err:
        br.load_trajectory(path)
    msg = str(err.value)
    assert "invalid benchmark trajectory" in msg
    assert "entry #1" in msg  # the bad entry is named, the good one not
    assert "entry #0" not in msg
    assert "bench_gate.py" in msg  # the fix hint


def test_many_invalid_entries_are_summarized(tmp_path):
    path = str(tmp_path / "BENCH_agcm.json")
    traj = br.empty_trajectory()
    traj["entries"] = [{"timestamp": f"t{i}"} for i in range(9)]
    with open(path, "w") as fh:
        json.dump(traj, fh)
    with pytest.raises(ValueError, match=r"more\)"):
        br.load_trajectory(path)


def test_repo_trajectory_passes_validation():
    """The committed BENCH_agcm.json must always load cleanly."""
    traj = br.load_trajectory(os.path.join(_REPO_ROOT, "BENCH_agcm.json"))
    assert traj["entries"]


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------

def test_no_baseline_means_no_regressions():
    assert br.compare_to_baseline(_fake_metrics(), None) == []


def test_regression_at_threshold_is_flagged():
    baseline = _entry()
    name = br.TRACKED_RATIOS[0]
    degraded = _fake_metrics(**{name: 2.0 * (1 - br.DEFAULT_THRESHOLD)})
    regs = br.compare_to_baseline(degraded, baseline)
    assert [r.name for r in regs] == [name]
    assert regs[0].drop == pytest.approx(br.DEFAULT_THRESHOLD)
    assert "degradation" in str(regs[0])


def test_small_degradation_and_improvements_pass():
    baseline = _entry()
    ok = _fake_metrics(**{br.TRACKED_RATIOS[0]: 1.9, br.TRACKED_RATIOS[1]: 5.0})
    assert br.compare_to_baseline(ok, baseline) == []


def test_untracked_metrics_never_gate():
    baseline = _entry()
    worse = _fake_metrics(agcm_old_total_s_per_day=1.0)
    assert br.compare_to_baseline(worse, baseline) == []


def test_metric_missing_on_either_side_is_skipped():
    baseline = _entry()
    partial = {br.TRACKED_RATIOS[0]: 2.0}  # others missing from current
    assert br.compare_to_baseline(partial, baseline) == []


# ----------------------------------------------------------------------
# the real thing (slow: recomputes the deterministic benchmarks)
# ----------------------------------------------------------------------

@pytest.mark.bench_gate
def test_collected_metrics_cover_all_tracked_ratios():
    metrics = br.collect_metrics()
    for name in br.TRACKED_RATIOS:
        assert name in metrics and metrics[name] > 0
    entry = br.make_entry(metrics, timestamp="now")
    assert br.validate_entry(entry) == []
    # the virtual machine is deterministic: the optimised variants must
    # actually be faster, or the repo's whole story is broken
    assert metrics["speedup_filter_fft_lb_vs_convolution"] > 1.0
    assert metrics["speedup_agcm_total_new_vs_old"] > 1.0


@pytest.mark.bench_gate
def test_collected_metrics_match_recorded_baseline():
    """Drift vs the checked-in BENCH_agcm.json is a real change."""
    recorded = br.baseline_entry(
        br.load_trajectory(os.path.join(_REPO_ROOT, "BENCH_agcm.json"))
    )
    if recorded is None:
        pytest.skip("no recorded baseline yet")
    metrics = br.collect_metrics()
    for name in br.TRACKED_RATIOS:
        assert metrics[name] == pytest.approx(
            recorded["metrics"][name], rel=1e-9
        ), f"{name} drifted from the recorded baseline"


@pytest.mark.bench_gate
def test_cli_gate_passes_and_fails_correctly(tmp_path):
    env = dict(os.environ)
    out = str(tmp_path / "BENCH_agcm.json")

    # first run: establishes the baseline, exit 0
    first = subprocess.run(
        [sys.executable, _GATE, "--output", out], env=env,
        capture_output=True, text=True,
    )
    assert first.returncode == 0, first.stdout + first.stderr
    traj = br.load_trajectory(out)
    assert len(traj["entries"]) == 1
    assert br.validate_entry(traj["entries"][0]) == []

    # inflate a tracked ratio in the baseline: the gate must fail with
    # exit 2 and must NOT record the failing run
    traj["entries"][0]["metrics"][br.TRACKED_RATIOS[0]] *= 2.0
    br.save_trajectory(out, traj)
    second = subprocess.run(
        [sys.executable, _GATE, "--output", out], env=env,
        capture_output=True, text=True,
    )
    assert second.returncode == 2, second.stdout + second.stderr
    assert "GATE FAILED" in second.stdout
    assert len(br.load_trajectory(out)["entries"]) == 1
