"""The full differential registry, each pair over >= 5 seeded configs.

Deselected from tier-1 (see pyproject addopts); run with::

    PYTHONPATH=src python -m pytest -m differential -q
"""

from __future__ import annotations

import pytest

from repro.verify.differential import DEFAULT_NCONFIGS, assert_pair, check_pair
from repro.verify.pairs import default_pairs, mutated_filter_pair, pair_by_name

pytestmark = pytest.mark.differential

_PAIR_NAMES = [p.name for p in default_pairs()]


def test_minimum_config_coverage():
    assert DEFAULT_NCONFIGS >= 5


@pytest.mark.parametrize("name", _PAIR_NAMES)
def test_pair_agrees(name):
    report = assert_pair(pair_by_name(name), nconfigs=DEFAULT_NCONFIGS)
    assert report.cases_run >= 5


def test_mutation_smoke_is_caught_with_minimal_counterexample(capsys):
    """The engine self-check: a deliberately broken FFT filter must fail
    with a shrunken counterexample (acceptance criterion)."""
    report = check_pair(mutated_filter_pair(), nconfigs=DEFAULT_NCONFIGS)
    assert not report.ok, "the planted mutation went undetected"
    cx = report.counterexample
    # greedy shrinking drives the grid toward the space's lower bounds
    assert cx.config["nlat"] <= 14
    assert cx.config["nlon"] <= 16
    assert cx.config["nlayers"] == 1
    print(cx)  # the acceptance criterion asks for the printed form
    assert "MINIMAL COUNTEREXAMPLE" in capsys.readouterr().out
