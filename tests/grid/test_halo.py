"""Tests for halo exchange: serial reference vs virtual-parallel exchange."""

import numpy as np
import pytest

from repro.grid.decomposition import Decomposition2D
from repro.grid.halo import exchange_halos, interior, pad_with_halo
from repro.parallel import GENERIC, ProcessorMesh, Simulator


class TestPadWithHalo:
    def test_interior_preserved(self, rng):
        f = rng.standard_normal((5, 7))
        p = pad_with_halo(f)
        np.testing.assert_array_equal(interior(p), f)

    def test_longitude_periodic(self, rng):
        f = rng.standard_normal((5, 7))
        p = pad_with_halo(f)
        np.testing.assert_array_equal(p[1:-1, 0], f[:, -1])
        np.testing.assert_array_equal(p[1:-1, -1], f[:, 0])

    def test_polar_rows_replicated(self, rng):
        f = rng.standard_normal((5, 7))
        p = pad_with_halo(f)
        np.testing.assert_array_equal(p[0], p[1])
        np.testing.assert_array_equal(p[-1], p[-2])

    def test_3d_fields(self, rng):
        f = rng.standard_normal((5, 7, 3))
        p = pad_with_halo(f)
        assert p.shape == (7, 9, 3)
        np.testing.assert_array_equal(interior(p), f)

    def test_wide_halo(self, rng):
        f = rng.standard_normal((6, 8))
        p = pad_with_halo(f, halo=2)
        assert p.shape == (10, 12)
        np.testing.assert_array_equal(p[2:-2, :2], f[:, -2:])

    def test_invalid_halo(self):
        with pytest.raises(ValueError):
            pad_with_halo(np.zeros((4, 4)), halo=0)
        with pytest.raises(ValueError):
            pad_with_halo(np.zeros((4, 4)), halo=5)


class TestExchangeHalos:
    @pytest.mark.parametrize("dims", [(1, 1), (1, 4), (3, 1), (2, 3), (3, 4)])
    @pytest.mark.parametrize("trailing", [(), (3,)])
    @pytest.mark.parametrize("halo", [1, 2])
    def test_matches_serial_reference(self, rng, dims, trailing, halo):
        """Every rank's padded block equals the slice of the global pad."""
        nlat, nlon = 9, 12
        field = rng.standard_normal((nlat, nlon, *trailing))
        mesh = ProcessorMesh(*dims)
        decomp = Decomposition2D(nlat, nlon, mesh)
        if any(
            halo > min(s.nlat, s.nlon) for s in decomp.subdomains()
        ):
            pytest.skip("halo wider than a block")
        reference = pad_with_halo(field, halo=halo)

        def program(ctx):
            local = decomp.scatter(field)[ctx.rank]
            padded = yield from exchange_halos(ctx, decomp, local, halo=halo)
            return padded

        res = Simulator(mesh.size, GENERIC).run(program)
        for sub in decomp.subdomains():
            got = res.returns[sub.rank]
            want = reference[
                sub.lat0 : sub.lat1 + 2 * halo, sub.lon0 : sub.lon1 + 2 * halo
            ]
            np.testing.assert_allclose(got, want)

    def test_corner_cells_from_diagonal_neighbours(self, rng):
        nlat, nlon = 8, 8
        field = rng.standard_normal((nlat, nlon))
        mesh = ProcessorMesh(2, 2)
        decomp = Decomposition2D(nlat, nlon, mesh)

        def program(ctx):
            local = decomp.scatter(field)[ctx.rank]
            return (yield from exchange_halos(ctx, decomp, local))

        res = Simulator(4, GENERIC).run(program)
        # Rank 0 owns lats 0-3, lons 0-3; its NE corner ghost is field[4, 4].
        assert res.returns[0][-1, -1] == pytest.approx(field[4, 4])

    def test_message_count(self, rng):
        """Interior ranks exchange 4 messages per call (2 EW + 2 NS)."""
        field = rng.standard_normal((9, 12))
        mesh = ProcessorMesh(3, 3)
        decomp = Decomposition2D(9, 12, mesh)

        def program(ctx):
            local = decomp.scatter(field)[ctx.rank]
            yield from exchange_halos(ctx, decomp, local)

        res = Simulator(9, GENERIC).run(program)
        center = mesh.rank_of(1, 1)
        assert res.trace.ranks[center].messages_sent == 4
        # Polar-row ranks skip one NS direction.
        south = mesh.rank_of(0, 0)
        assert res.trace.ranks[south].messages_sent == 3

    def test_shape_mismatch_rejected(self, rng):
        decomp = Decomposition2D(9, 12, ProcessorMesh(3, 3))

        def program(ctx):
            local = np.zeros((2, 2))
            yield from exchange_halos(ctx, decomp, local)

        with pytest.raises(ValueError):
            Simulator(9, GENERIC).run(program)
