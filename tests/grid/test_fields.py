"""Tests for FieldSet layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.fields import BLOCK, SEPARATE, FieldSet


class TestConstruction:
    def test_separate_layout(self):
        fs = FieldSet(["a", "b"], (3, 4), layout=SEPARATE)
        assert fs["a"].shape == (3, 4)
        assert "a" in fs and "c" not in fs
        assert len(fs) == 2

    def test_block_layout_views(self):
        fs = FieldSet(["a", "b"], (3, 4), layout=BLOCK)
        fs["a"][0, 0] = 7.0
        assert fs.block_view()[0, 0, 0] == 7.0

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            FieldSet(["a", "a"], (2, 2))

    def test_empty_names(self):
        with pytest.raises(ValueError):
            FieldSet([], (2, 2))

    def test_bad_layout(self):
        with pytest.raises(ValueError):
            FieldSet(["a"], (2, 2), layout="diagonal")

    def test_block_view_requires_block(self):
        fs = FieldSet(["a"], (2, 2), layout=SEPARATE)
        with pytest.raises(ValueError):
            fs.block_view()


class TestAssignment:
    def test_setitem_copies(self, rng):
        fs = FieldSet(["a"], (3, 4))
        data = rng.standard_normal((3, 4))
        fs["a"] = data
        data[0, 0] = 999
        assert fs["a"][0, 0] != 999

    def test_setitem_shape_checked(self):
        fs = FieldSet(["a"], (3, 4))
        with pytest.raises(ValueError):
            fs["a"] = np.zeros((4, 3))


class TestLayoutConversion:
    @given(layout=st.sampled_from([SEPARATE, BLOCK]))
    @settings(max_examples=4, deadline=None)
    def test_roundtrip(self, layout):
        rng = np.random.default_rng(0)
        fs = FieldSet(["u", "v", "pt"], (4, 5, 2), layout=layout)
        fs.fill_random(rng)
        other_layout = BLOCK if layout == SEPARATE else SEPARATE
        converted = fs.to_layout(other_layout)
        assert converted.layout == other_layout
        assert fs.allclose(converted)
        back = converted.to_layout(layout)
        assert fs.allclose(back)

    def test_copy_independent(self, rng):
        fs = FieldSet(["a"], (2, 2))
        fs.fill_random(rng)
        cp = fs.copy()
        cp["a"][0, 0] += 1
        assert not fs.allclose(cp)

    def test_nbytes(self):
        fs = FieldSet(["a", "b"], (10, 10))
        assert fs.nbytes == 2 * 100 * 8

    def test_allclose_name_mismatch(self):
        a = FieldSet(["x"], (2, 2))
        b = FieldSet(["y"], (2, 2))
        assert not a.allclose(b)
