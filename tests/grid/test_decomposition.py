"""Tests for the 2-D domain decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.decomposition import Decomposition2D
from repro.parallel.topology import ProcessorMesh


class TestSubdomains:
    def test_blocks_tile_grid(self):
        decomp = Decomposition2D(10, 12, ProcessorMesh(3, 4))
        covered = np.zeros((10, 12), dtype=int)
        for sub in decomp.subdomains():
            covered[sub.lat_slice, sub.lon_slice] += 1
        np.testing.assert_array_equal(covered, 1)

    def test_paper_mesh_8x30(self):
        """The paper's 8x30 mesh over the 90 x 144 grid is uneven."""
        decomp = Decomposition2D(90, 144, ProcessorMesh(8, 30))
        sizes = {s.shape for s in decomp.subdomains()}
        assert len(sizes) > 1  # uneven blocks exist
        assert sum(s.nlat * s.nlon for s in decomp.subdomains()) == 90 * 144

    def test_grid_too_small(self):
        with pytest.raises(ValueError):
            Decomposition2D(2, 2, ProcessorMesh(3, 3))

    def test_owner_of_point(self):
        decomp = Decomposition2D(10, 12, ProcessorMesh(3, 4))
        for glat in range(10):
            for glon in range(12):
                rank = decomp.owner_of_point(glat, glon)
                sub = decomp.subdomain(rank)
                assert sub.lat0 <= glat < sub.lat1
                assert sub.lon0 <= glon < sub.lon1

    def test_proc_row_bounds(self):
        decomp = Decomposition2D(10, 12, ProcessorMesh(3, 4))
        lo, hi = decomp.lat_bounds_of_proc_row(0)
        assert lo == 0
        assert decomp.lat_bounds_of_proc_row(2)[1] == 10


#: Random grid/mesh sizes constrained so the mesh fits the grid.
_grid_and_mesh = st.tuples(
    st.integers(4, 40), st.integers(4, 40),
    st.integers(1, 6), st.integers(1, 6),
).filter(lambda t: t[0] >= t[2] and t[1] >= t[3])


class TestDecompositionProperties:
    """Satellite properties over seeded random sizes."""

    @given(dims=_grid_and_mesh)
    @settings(max_examples=40, deadline=None)
    def test_blocks_tile_grid_exactly_once(self, dims):
        nlat, nlon, m, n = dims
        decomp = Decomposition2D(nlat, nlon, ProcessorMesh(m, n))
        covered = np.zeros((nlat, nlon), dtype=int)
        for sub in decomp.subdomains():
            covered[sub.lat_slice, sub.lon_slice] += 1
        np.testing.assert_array_equal(covered, 1)

    @given(dims=_grid_and_mesh)
    @settings(max_examples=40, deadline=None)
    def test_blocks_balanced_within_one_per_axis(self, dims):
        nlat, nlon, m, n = dims
        decomp = Decomposition2D(nlat, nlon, ProcessorMesh(m, n))
        lat_sizes = {s.nlat for s in decomp.subdomains()}
        lon_sizes = {s.nlon for s in decomp.subdomains()}
        assert max(lat_sizes) - min(lat_sizes) <= 1
        assert max(lon_sizes) - min(lon_sizes) <= 1
        assert all(s.nlat > 0 and s.nlon > 0 for s in decomp.subdomains())

    @given(dims=_grid_and_mesh, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_owner_of_point_matches_subdomain(self, dims, data):
        nlat, nlon, m, n = dims
        decomp = Decomposition2D(nlat, nlon, ProcessorMesh(m, n))
        glat = data.draw(st.integers(0, nlat - 1))
        glon = data.draw(st.integers(0, nlon - 1))
        sub = decomp.subdomain(decomp.owner_of_point(glat, glon))
        assert sub.lat0 <= glat < sub.lat1
        assert sub.lon0 <= glon < sub.lon1

    @given(dims=_grid_and_mesh)
    @settings(max_examples=40, deadline=None)
    def test_counts_conserve_grid_points(self, dims):
        nlat, nlon, m, n = dims
        decomp = Decomposition2D(nlat, nlon, ProcessorMesh(m, n))
        counts = decomp.counts()
        assert len(counts) == m * n
        assert sum(counts.values()) == nlat * nlon


class TestScatterGather:
    @given(
        nlat=st.integers(4, 20),
        nlon=st.integers(4, 20),
        m=st.integers(1, 4),
        n=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, nlat, nlon, m, n):
        if nlat < m or nlon < n:
            return
        decomp = Decomposition2D(nlat, nlon, ProcessorMesh(m, n))
        field = np.arange(nlat * nlon * 2, dtype=float).reshape(nlat, nlon, 2)
        blocks = decomp.scatter(field)
        back = decomp.gather(blocks)
        np.testing.assert_array_equal(back, field)

    def test_scatter_copies(self):
        decomp = Decomposition2D(6, 8, ProcessorMesh(2, 2))
        field = np.zeros((6, 8))
        blocks = decomp.scatter(field)
        blocks[0][...] = 99
        assert field[0, 0] == 0.0

    def test_scatter_shape_mismatch(self):
        decomp = Decomposition2D(6, 8, ProcessorMesh(2, 2))
        with pytest.raises(ValueError):
            decomp.scatter(np.zeros((5, 8)))

    def test_gather_wrong_block_count(self):
        decomp = Decomposition2D(6, 8, ProcessorMesh(2, 2))
        with pytest.raises(ValueError):
            decomp.gather([np.zeros((3, 4))])

    def test_gather_wrong_block_shape(self):
        decomp = Decomposition2D(6, 8, ProcessorMesh(2, 2))
        blocks = decomp.scatter(np.zeros((6, 8)))
        blocks[1] = np.zeros((2, 4))
        with pytest.raises(ValueError):
            decomp.gather(blocks)

    def test_counts(self):
        decomp = Decomposition2D(6, 8, ProcessorMesh(2, 2))
        assert sum(decomp.counts().values()) == 48
