"""Tests for Arakawa C-grid staggering operators."""

import numpy as np
import pytest

from repro.grid.arakawa_c import (
    ArakawaCGrid,
    enforce_polar_v,
    to_u_points,
    to_v_points,
    u_to_centers,
    v_to_centers,
)
from repro.grid.sphere import SphericalGrid


@pytest.fixture
def field(rng):
    return rng.standard_normal((6, 8))


class TestStaggering:
    def test_uniform_field_invariant(self):
        h = np.full((5, 6), 3.0)
        np.testing.assert_allclose(to_u_points(h), 3.0)
        np.testing.assert_allclose(to_v_points(h), 3.0)

    def test_u_points_periodic(self, field):
        up = to_u_points(field)
        assert up[0, -1] == pytest.approx(0.5 * (field[0, -1] + field[0, 0]))

    def test_v_points_polar_row(self, field):
        vp = to_v_points(field)
        np.testing.assert_allclose(vp[-1], field[-1])

    def test_center_roundtrip_smooths(self, field):
        """Stagger then unstagger is the classic 1-2-1 smoother zonally."""
        back = u_to_centers(to_u_points(field))
        expected = 0.25 * (
            np.roll(field, 1, axis=1) + 2 * field + np.roll(field, -1, axis=1)
        )
        np.testing.assert_allclose(back, expected)

    def test_v_to_centers_south_edge(self, field):
        back = v_to_centers(field)
        assert back[0, 0] == pytest.approx(0.5 * field[0, 0])

    def test_enforce_polar_v(self, field):
        v = field.copy()
        out = enforce_polar_v(v)
        assert out is v
        np.testing.assert_allclose(v[-1], 0.0)


class TestArakawaCGrid:
    def test_shapes(self):
        g = ArakawaCGrid(SphericalGrid(6, 8), nlayers=3)
        assert g.shape2d == (6, 8)
        assert g.shape3d == (6, 8, 3)
        assert g.zeros3d().shape == (6, 8, 3)

    def test_metric_broadcast_shapes(self):
        g = ArakawaCGrid(SphericalGrid(6, 8), nlayers=2)
        assert g.cos_lat_col.shape == (6, 1)
        assert g.dx.shape == (6, 1)
        assert g.coriolis_col.shape == (6, 1)
        assert np.isscalar(g.dy) or g.dy > 0

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            ArakawaCGrid(SphericalGrid(6, 8), nlayers=0)
