"""Tests for the 3-D block decomposition and its 2-D slab views."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid.decomposition3d import Decomposition3D
from repro.parallel.topology import ProcessorMesh


def _decomp(nlat=12, nlon=16, nlev=6, dims=(2, 2, 3)):
    return Decomposition3D(nlat, nlon, nlev, ProcessorMesh(*dims))


class TestPartition:
    def test_slabs_tile_the_grid_exactly(self):
        d = _decomp()
        seen = np.zeros((d.nlat, d.nlon, d.nlev), dtype=int)
        for s in d.subdomains():
            seen[s.lat_slice, s.lon_slice, s.lev_slice] += 1
        assert (seen == 1).all()

    def test_counts_sum_to_grid(self):
        d = _decomp()
        assert sum(d.counts().values()) == d.nlat * d.nlon * d.nlev

    def test_owner_of_point_consistent(self):
        d = _decomp()
        for s in d.subdomains():
            assert d.owner_of_point(s.lat0, s.lon0, s.lev0) == s.rank

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            Decomposition3D(4, 4, 2, ProcessorMesh(1, 1, 3))


class TestScatterGather:
    @given(
        nlev=st.integers(2, 8),
        kprocs=st.integers(1, 4),
    )
    def test_roundtrip_3d_field(self, nlev, kprocs):
        if nlev < kprocs:
            nlev = kprocs
        d = _decomp(nlev=nlev, dims=(2, 2, kprocs))
        field = np.arange(
            d.nlat * d.nlon * d.nlev, dtype=float
        ).reshape(d.nlat, d.nlon, d.nlev)
        blocks = d.scatter(field)
        np.testing.assert_array_equal(d.gather(blocks), field)

    def test_single_level_field_replicated_per_pillar(self):
        d = _decomp()
        ps = np.random.default_rng(0).standard_normal((d.nlat, d.nlon, 1))
        blocks = d.scatter(ps)
        mesh = d.mesh
        for i in range(mesh.nlat_procs):
            for j in range(mesh.nlon_procs):
                pillar = mesh.pillar_ranks(i, j)
                for r in pillar[1:]:
                    np.testing.assert_array_equal(
                        blocks[r], blocks[pillar[0]]
                    )
        np.testing.assert_array_equal(
            d.gather(blocks, single_level=True), ps
        )

    def test_single_level_gather_needs_flag_on_unit_slabs(self):
        # nlev == nlev_procs leaves one layer per rank: ps blocks are
        # shape-identical to split blocks, so the caller must say so.
        d = _decomp(nlev=3, dims=(2, 2, 3))
        ps = np.ones((d.nlat, d.nlon, 1))
        blocks = d.scatter(ps)
        out = d.gather(blocks, single_level=True)
        assert out.shape == (d.nlat, d.nlon, 1)

    def test_wrong_block_count_rejected(self):
        d = _decomp()
        with pytest.raises(ValueError):
            d.gather([np.zeros((1, 1, 1))])


class TestSlabViews:
    def test_slab_is_2d_shaped(self):
        d = _decomp()
        slab = d.slab(1)
        assert slab.nlat == d.nlat and slab.nlon == d.nlon
        subs = slab.subdomains()
        assert len(subs) == d.mesh.nlat_procs * d.mesh.nlon_procs
        # Keyed by *global* rank, all on the requested level.
        for s in subs:
            assert d.subdomain(s.rank).klev_proc == 1

    def test_slab_mesh_speaks_global_ranks(self):
        d = _decomp()
        slab = d.slab(2)
        m = slab.mesh
        for i in range(m.nlat_procs):
            for j in range(m.nlon_procs):
                g = m.rank_of(i, j)
                assert d.mesh.coords3_of(g) == (i, j, 2)

    def test_slab_neighbours_stay_in_level(self):
        d = _decomp()
        m = d.slab(1).mesh
        for s in d.slab(1).subdomains():
            east = m.east_of(s.rank)
            assert d.subdomain(east).klev_proc == 1

    def test_slab_cached(self):
        d = _decomp()
        assert d.slab(0) is d.slab(0)

    def test_bad_level_rejected(self):
        d = _decomp()
        with pytest.raises(IndexError):
            d.slab(3).mesh  # noqa: B018 — construction raises

    def test_lev_bounds(self):
        d = _decomp(nlev=7, dims=(1, 1, 3))
        bounds = [d.lev_bounds_of_proc(k) for k in range(3)]
        assert bounds[0][0] == 0 and bounds[-1][1] == 7
        widths = [b1 - b0 for b0, b1 in bounds]
        assert sum(widths) == 7 and max(widths) - min(widths) <= 1

    def test_horizontal_projection(self):
        d = _decomp()
        for s in d.subdomains():
            h = s.horizontal()
            assert (h.lat0, h.lat1, h.lon0, h.lon1) == (
                s.lat0, s.lat1, s.lon0, s.lon1
            )
            assert h.rank == s.rank
