"""Tests for the spherical grid geometry."""

import math

import numpy as np
import pytest

from repro import constants as c
from repro.grid.sphere import SphericalGrid


class TestCoordinates:
    def test_paper_resolution_dims(self):
        grid = SphericalGrid(90, 144)
        assert grid.dlat_deg == pytest.approx(2.0)
        assert grid.dlon_deg == pytest.approx(2.5)

    def test_latitudes_symmetric_and_ordered(self, paper_grid):
        lat = paper_grid.lat_deg
        assert lat[0] == pytest.approx(-89.0)
        assert lat[-1] == pytest.approx(89.0)
        np.testing.assert_allclose(lat, -lat[::-1])
        assert np.all(np.diff(lat) > 0)

    def test_no_point_at_poles(self, paper_grid):
        assert np.abs(paper_grid.lat_deg).max() < 90.0

    def test_longitudes_start_at_zero(self, small_grid):
        assert small_grid.lon_deg[0] == 0.0
        assert small_grid.lon_deg[-1] < 360.0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SphericalGrid(0, 10)
        with pytest.raises(ValueError):
            SphericalGrid(10, 10, radius=-1)


class TestMetrics:
    def test_zonal_spacing_collapses_poleward(self, paper_grid):
        """The fact that forces the polar filter to exist."""
        dx = paper_grid.dlon_m
        mid = paper_grid.nlat // 2
        assert dx[0] < dx[mid] / 10
        assert dx[-1] < dx[mid] / 10

    def test_zonal_spacing_value_at_equator(self):
        grid = SphericalGrid(90, 144)
        # ~2.5 deg at cos(1 deg): a * cos * dlon
        expected = c.EARTH_RADIUS * math.cos(math.radians(1.0)) * math.radians(2.5)
        assert grid.dlon_m[45] == pytest.approx(expected)

    def test_meridional_spacing_uniform(self, paper_grid):
        expected = c.EARTH_RADIUS * math.radians(2.0)
        assert paper_grid.dlat_m == pytest.approx(expected)

    def test_coriolis_sign_and_magnitude(self, paper_grid):
        f = paper_grid.coriolis
        assert f[0] < 0 < f[-1]
        assert abs(f).max() == pytest.approx(2 * c.EARTH_OMEGA, rel=1e-3)

    def test_total_area_is_sphere(self, small_grid):
        assert small_grid.total_area() == pytest.approx(
            4 * math.pi * c.EARTH_RADIUS**2, rel=1e-10
        )

    def test_cell_area_positive(self, small_grid):
        assert np.all(small_grid.cell_area > 0)

    def test_describe(self):
        s = SphericalGrid(90, 144).describe()
        assert "2" in s and "2.5" in s
