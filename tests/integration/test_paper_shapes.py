"""Integration tests of the paper's qualitative claims at reduced scale.

The full-resolution table regenerations live under ``benchmarks/``; these
tests pin the same *shape* claims on smaller grids so the ordinary test
suite stays fast.
"""

import numpy as np
import pytest

from repro.core import make_filter_plan, prepare_filter_backend
from repro.dynamics.state import initial_fields_block
from repro.grid import Decomposition2D, SphericalGrid
from repro.model import ComponentBreakdown, make_config
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import PARAGON, T3D, ProcessorMesh, Simulator


def _filter_program(decomp, backend, grid, nlayers):
    def program(ctx):
        sub = decomp.subdomain(ctx.rank)
        fields = initial_fields_block(
            grid.lat_rad[sub.lat_slice], grid.lon_rad[sub.lon_slice], nlayers
        )
        yield from ctx.barrier()
        with ctx.region("filter"):
            yield from backend.apply(ctx, fields)
        return None

    return program


@pytest.fixture(scope="module")
def filter_times():
    """Isolated filter times per backend on a mid-size mesh, both machines."""
    grid = SphericalGrid(30, 48)
    plan = make_filter_plan(grid)
    mesh = ProcessorMesh(5, 4)
    decomp = Decomposition2D(grid.nlat, grid.nlon, mesh)
    out = {}
    for machine in (PARAGON, T3D):
        for name in ("convolution-ring", "convolution-tree", "fft", "fft-lb"):
            backend = prepare_filter_backend(name, plan, decomp)
            res = Simulator(mesh.size, machine).run(
                _filter_program(decomp, backend, grid, 6)
            )
            out[(machine.name, name)] = res.trace.phase_max("filter")
    return out


class TestFilteringOrdering:
    def test_convolution_slowest_fft_lb_fastest(self, filter_times):
        """Tables 8-11's column ordering: conv > fft > fft-lb."""
        for machine in ("paragon", "t3d"):
            conv = filter_times[(machine, "convolution-ring")]
            fft = filter_times[(machine, "fft")]
            lb = filter_times[(machine, "fft-lb")]
            assert conv > fft > lb, machine

    def test_fft_lb_large_factor_over_convolution(self, filter_times):
        """Paper: ~3.5-5x depending on mesh."""
        ratio = (
            filter_times[("paragon", "convolution-ring")]
            / filter_times[("paragon", "fft-lb")]
        )
        assert ratio > 2.0

    def test_t3d_faster_than_paragon(self, filter_times):
        for name in ("convolution-ring", "fft", "fft-lb"):
            assert filter_times[("t3d", name)] < filter_times[("paragon", name)]


@pytest.fixture(scope="module")
def agcm_runs():
    """Tiny AGCM runs across meshes and backends on the Paragon model."""
    cfg = make_config("tiny")
    out = {}
    for backend in ("convolution-ring", "fft-lb"):
        for dims in ((1, 1), (3, 4)):
            mesh = ProcessorMesh(*dims)
            decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
            res = Simulator(mesh.size, PARAGON).run(
                agcm_rank_program, cfg.with_(filter_backend=backend),
                decomp, 8,
            )
            out[(backend, dims)] = ComponentBreakdown.from_result(res, 8, cfg)
    return out


class TestWholeCodeShapes:
    def test_new_filter_reduces_total_time(self, agcm_runs):
        """The headline ~45% overall reduction (direction + meaningful
        magnitude at this scale)."""
        old = agcm_runs[("convolution-ring", (3, 4))].total
        new = agcm_runs[("fft-lb", (3, 4))].total
        assert new < old

    def test_parallel_faster_than_serial(self, agcm_runs):
        for backend in ("convolution-ring", "fft-lb"):
            serial = agcm_runs[(backend, (1, 1))].total
            parallel = agcm_runs[(backend, (3, 4))].total
            assert parallel < serial / 3

    def test_filtering_fraction_drops_with_new_filter(self, agcm_runs):
        old = agcm_runs[("convolution-ring", (3, 4))]
        new = agcm_runs[("fft-lb", (3, 4))]
        assert (
            new.filtering_fraction_of_dynamics
            < old.filtering_fraction_of_dynamics
        )

    def test_physics_identical_cost_across_backends(self, agcm_runs):
        """The filter choice must not change the physics workload."""
        old = agcm_runs[("convolution-ring", (1, 1))].physics
        new = agcm_runs[("fft-lb", (1, 1))].physics
        assert old == pytest.approx(new, rel=1e-9)


class TestPhysicsLbEndToEnd:
    def test_lb_reduces_physics_critical_path(self):
        """Scheme-3 balancing shortens the physics phase of a real run."""
        cfg = make_config("tiny", physics_every=2)
        mesh = ProcessorMesh(3, 4)
        decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
        nsteps = 13  # several physics calls so balancing engages

        res_off = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg, decomp, nsteps
        )
        res_on = Simulator(mesh.size, PARAGON).run(
            agcm_rank_program, cfg.with_(physics_lb=True), decomp, nsteps
        )
        phys_off = res_off.trace.phase_max("physics")
        phys_on = res_on.trace.phase_max("physics")
        assert phys_on < phys_off
        moved = sum(r["columns_moved"] for r in res_on.returns)
        assert moved > 0
