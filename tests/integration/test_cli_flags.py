"""Every CLI subcommand must reject unknown flags with exit code 2.

Regression sweep for the silent-flag-drop class of bug: a mistyped
option (``--nsteps`` for ``--steps``) that is ignored instead of
rejected silently runs the wrong experiment.  The contract pinned here
is uniform across the hand-rolled parsers in ``repro.__main__`` /
``repro.fleet.cli`` and the argparse-based ones (``repro.results.cli``,
``tools/``): unknown options terminate with status 2 before any work
starts.
"""

import pytest

from repro.__main__ import main


def _exit_code(argv):
    """Run the CLI in-process; normalise SystemExit (argparse) to a code."""
    try:
        return main(argv)
    except SystemExit as exc:  # argparse-based subcommands raise
        return exc.code


@pytest.mark.parametrize(
    "argv",
    [
        pytest.param(["run", "--no-such-flag"], id="run"),
        pytest.param(["report", "--no-such-flag"], id="report"),
        pytest.param(["profile", "--no-such-flag"], id="profile"),
        pytest.param(["campaign", "--no-such-flag"], id="campaign"),
        pytest.param(["serve", "--no-such-flag"], id="serve"),
        pytest.param(["guard", "--no-such-flag"], id="guard"),
        pytest.param(["results", "--no-such-flag"], id="results"),
        pytest.param(["fleet", "worker", "--no-such-flag"],
                     id="fleet-worker"),
        pytest.param(["fleet", "echo", "--no-such-flag"], id="fleet-echo"),
        pytest.param(["fleet", "frobnicate"], id="fleet-unknown-sub"),
    ],
)
def test_unknown_flag_exits_2(argv, capsys):
    assert _exit_code(argv) == 2
    # The rejection must be diagnosed on stderr, not swallowed.
    captured = capsys.readouterr()
    assert captured.err.strip()


def test_unknown_experiment_exits_2(capsys):
    assert _exit_code(["no-such-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_valid_list_still_works(capsys):
    assert _exit_code(["list"]) == 0
