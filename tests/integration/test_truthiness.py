"""Falsy-``__len__`` regression tests: empty is not absent.

Several containers here define ``__len__`` (``ResultCache``,
``MetricsRegistry``, the scheduler queues), which makes their *empty*
instances falsy.  Code that gates "is this component attached?" on bare
truthiness (``if self.cache:``) then silently treats an attached-but-
empty component as missing.  These tests pin the two spots that bug
actually bit — the gateway status endpoint and the fleet worker
command line — plus the falsiness contract itself, so the distinction
between "empty" and "absent" stays load-bearing.
"""

import pytest

from repro.campaign.cache import ResultCache
from repro.fleet.harness import LocalFleet
from repro.obs.metrics import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.gateway import Gateway


def test_empty_result_cache_is_falsy_but_present(tmp_path):
    cache = ResultCache(str(tmp_path))
    # The contract the bugs relied on: empty containers are falsy.
    assert len(cache) == 0
    assert not cache
    # So presence checks must use `is not None`, never truthiness.
    assert cache is not None


def test_empty_metrics_registry_is_falsy():
    reg = MetricsRegistry()
    assert len(reg) == 0
    assert not reg


def test_gateway_status_reports_attached_empty_cache(tmp_path):
    gw = Gateway(ServeConfig(cache_dir=str(tmp_path), spans=True))
    assert gw.cache is not None and len(gw.cache) == 0
    status = gw.status()
    # An attached-but-empty cache reports 0 entries *because it is
    # empty*, and the observer (zero spans so far) stays counted; the
    # old truthiness gate took the `else 0` arm for both, which happens
    # to coincide here — the real assertion is that the live objects
    # are consulted at all, checked via a non-empty cache below.
    assert status["cache_entries"] == 0
    assert status["spans_recorded"] == 0


def test_gateway_status_counts_cache_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("deadbeef" * 8, {"x": 1})
    gw = Gateway(ServeConfig(cache_dir=str(tmp_path)))
    assert gw.status()["cache_entries"] == 1


@pytest.mark.parametrize("falsy_dir", [""])
def test_fleet_forwards_falsy_cache_dir(falsy_dir):
    fleet = LocalFleet(nworkers=1, worker_cache_dirs=[falsy_dir])
    cmd = fleet._worker_cmd(0)
    # A set-but-falsy per-worker entry must still be forwarded: only
    # None means "no cache dir for this worker".
    assert "--cache-dir" in cmd
    assert cmd[cmd.index("--cache-dir") + 1] == falsy_dir


def test_fleet_omits_unset_cache_dir():
    fleet = LocalFleet(nworkers=1)
    assert "--cache-dir" not in fleet._worker_cmd(0)
