"""Property-based integration tests of the parallel machinery.

Random (grid, mesh, backend) combinations — the decisive invariant is
always the same: the virtual-parallel computation produces exactly the
serial result, for every decomposition.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    apply_serial_filter,
    make_filter_plan,
    prepare_filter_backend,
)
from repro.grid import Decomposition2D, SphericalGrid
from repro.model import make_config
from repro.model.agcm import AGCM
from repro.model.parallel_agcm import agcm_rank_program
from repro.parallel import GENERIC, PARAGON, ProcessorMesh, Simulator
from repro.verify import tolerances


@given(
    nlat=st.sampled_from([10, 14, 18]),
    nlon=st.sampled_from([12, 16, 20]),
    m=st.integers(1, 4),
    n=st.integers(1, 4),
    backend=st.sampled_from(
        ["convolution-ring", "convolution-tree", "fft", "fft-lb"]
    ),
    seed=st.integers(0, 1000),
)
@settings(max_examples=25, deadline=None)
def test_parallel_filter_equals_serial_property(
    nlat, nlon, m, n, backend, seed
):
    if nlat < m or nlon < n:
        return
    grid = SphericalGrid(nlat, nlon)
    rng = np.random.default_rng(seed)
    fields = {
        name: rng.standard_normal((nlat, nlon, 2))
        for name in ("u", "v", "pt", "q")
    }
    fields["ps"] = rng.standard_normal((nlat, nlon, 1))
    plan = make_filter_plan(grid)
    reference = {k: v.copy() for k, v in fields.items()}
    apply_serial_filter(plan, reference)

    mesh = ProcessorMesh(m, n)
    decomp = Decomposition2D(nlat, nlon, mesh)
    be = prepare_filter_backend(backend, plan, decomp)

    def program(ctx):
        local = {k: decomp.scatter(fields[k])[ctx.rank].copy() for k in fields}
        yield from be.apply(ctx, local)
        return local

    res = Simulator(mesh.size, GENERIC).run(program)
    for name in fields:
        gathered = decomp.gather(
            [res.returns[r][name] for r in range(mesh.size)]
        )
        np.testing.assert_allclose(
            gathered, reference[name], atol=tolerances.FIELD_ATOL_LOOSE,
            err_msg=f"{backend} on {m}x{n} mesh, field {name}",
        )


@given(
    m=st.integers(1, 3),
    n=st.integers(1, 4),
    lb=st.booleans(),
    vdiff=st.sampled_from([0.0, 5.0]),
)
@settings(max_examples=8, deadline=None)
def test_parallel_agcm_equals_serial_property(m, n, lb, vdiff):
    """Random mesh + feature toggles: the model is decomposition-blind."""
    cfg = make_config("tiny", physics_lb=lb, vertical_diffusion=vdiff)
    nsteps = 5
    serial = AGCM(cfg)
    serial.initialize()
    serial.run(nsteps)
    ref = serial.state.fields()

    mesh = ProcessorMesh(m, n)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    res = Simulator(mesh.size, GENERIC).run(
        agcm_rank_program, cfg, decomp, nsteps, True
    )
    for name, want in ref.items():
        gathered = decomp.gather(
            [res.returns[r]["fields"][name] for r in range(mesh.size)]
        )
        np.testing.assert_allclose(gathered, want, atol=tolerances.FIELD_ATOL)


@pytest.mark.parametrize("backend", ["fft-lb"])
def test_paper_resolution_equivalence(backend):
    """The headline equivalence at the paper's own 144 x 90 x 9 grid."""
    cfg = make_config("2x2.5x9", filter_backend=backend)
    nsteps = 2
    serial = AGCM(cfg)
    serial.initialize()
    serial.run(nsteps)

    mesh = ProcessorMesh(3, 4)
    decomp = Decomposition2D(cfg.nlat, cfg.nlon, mesh)
    res = Simulator(mesh.size, PARAGON).run(
        agcm_rank_program, cfg, decomp, nsteps, True
    )
    for name, want in serial.state.fields().items():
        gathered = decomp.gather(
            [res.returns[r]["fields"][name] for r in range(mesh.size)]
        )
        np.testing.assert_allclose(gathered, want, atol=tolerances.FIELD_ATOL_LOOSE, err_msg=name)
