"""Core span/metrics semantics: recording, nesting, zero-cost-off."""

from __future__ import annotations

import pytest

from repro.model import AGCMConfig
from repro.obs import (
    NULL_OBSERVER,
    NULL_SPAN,
    MetricsRegistry,
    Observer,
    activate,
    get_active,
)
from repro.parallel import GENERIC, Simulator

pytestmark = pytest.mark.obs


def ping_pong(ctx):
    with ctx.region("talk"):
        if ctx.rank == 0:
            yield from ctx.send(1, payload="hi")
            reply = yield from ctx.recv(1)
        else:
            msg = yield from ctx.recv(0)
            yield from ctx.send(0, payload=msg + "!")
    with ctx.span("work", size=ctx.size):
        yield from ctx.compute(seconds=1.0)
    ctx.metrics.counter("pings").inc()
    return ctx.rank


class TestRecording:
    def test_spans_and_metrics_recorded(self):
        obs = Observer()
        res = Simulator(2, GENERIC, observer=obs).run(ping_pong)
        assert res.returns == [0, 1]
        assert len(obs.runs) == 1
        assert obs.runs[0].nranks == 2
        # one "talk" region span and one "work" span per rank
        assert len(obs.spans_named("talk")) == 2
        work = obs.spans_named("work")
        assert len(work) == 2
        for s in work:
            assert s.tags == {"size": 2}
            assert s.end is not None and s.duration == pytest.approx(1.0)
        assert obs.metrics.counter("pings").value == 2
        # run summary mirrored into sim.* counters
        assert obs.metrics.counter("sim.messages_sent").value == 2

    def test_spans_closed_even_on_failure(self):
        def dies(ctx):
            with ctx.region("doomed"):
                yield from ctx.compute(seconds=1.0)
                if ctx.rank == 0:
                    raise RuntimeError("boom")
            return None

        obs = Observer()
        with pytest.raises(RuntimeError, match="boom"):
            Simulator(2, GENERIC, observer=obs).run(dies)
        # the dangling region span was force-closed at run teardown
        for s in obs.spans:
            assert s.end is not None

    def test_instants_record_clock(self):
        def marker(ctx):
            yield from ctx.compute(seconds=2.0)
            ctx.instant("mark", step=3)
            return None

        obs = Observer()
        Simulator(1, GENERIC, observer=obs).run(marker)
        (inst,) = obs.instants
        assert inst.name == "mark"
        assert inst.t == pytest.approx(2.0)
        assert inst.tags == {"step": 3}


class TestNesting:
    def test_children_within_parent_same_rank(self):
        def nested(ctx):
            with ctx.span("outer"):
                yield from ctx.compute(seconds=1.0)
                with ctx.span("inner"):
                    yield from ctx.compute(seconds=2.0)
                yield from ctx.compute(seconds=0.5)
            return None

        obs = Observer()
        Simulator(2, GENERIC, observer=obs).run(nested)
        for outer in obs.spans_named("outer"):
            kids = obs.children(outer.sid)
            assert [k.name for k in kids] == ["inner"]
            for k in kids:
                assert k.rank == outer.rank
                assert outer.start <= k.start <= k.end <= outer.end

    def test_out_of_order_close_rejected(self):
        obs = Observer()
        obs.start_run(label="manual", nranks=1)
        a = obs.begin(0, "a", 0.0)
        obs.begin(0, "b", 1.0)
        with pytest.raises(RuntimeError):
            obs.end(0, a, 2.0)


class TestZeroCostOff:
    def test_null_observer_is_default_and_inert(self):
        res = Simulator(2, GENERIC).run(ping_pong)
        assert res.returns == [0, 1]
        assert not NULL_OBSERVER.enabled
        # the shared null sink never accumulates anything
        assert NULL_OBSERVER.metrics.counter("pings").value == 0

    def test_span_returns_shared_null_singleton_when_off(self):
        captured = []

        def probe(ctx):
            captured.append(ctx.span("x"))
            yield from ctx.compute(seconds=1.0)
            return None

        Simulator(1, GENERIC).run(probe)
        assert captured[0] is NULL_SPAN


class TestAmbient:
    def test_activate_makes_observer_ambient(self):
        obs = Observer()
        assert get_active() is None
        with activate(obs):
            assert get_active() is obs
            Simulator(2, GENERIC).run(ping_pong)
        assert get_active() is None
        assert len(obs.runs) == 1 and len(obs.spans) > 0

    def test_explicit_observer_wins_over_ambient(self):
        ambient, explicit = Observer(), Observer()
        with activate(ambient):
            Simulator(2, GENERIC, observer=explicit).run(ping_pong)
        assert len(explicit.runs) == 1
        assert len(ambient.runs) == 0


class TestMetricsRegistry:
    def test_counter_gauge_and_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.counter("n").inc(3)
        assert reg.counter("n").value == 5
        reg.gauge("g").set(1.5)
        with pytest.raises(TypeError):
            reg.gauge("n")
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)
        d = reg.as_dict()
        assert d["counters"]["n"] == 5
        assert d["gauges"]["g"] == 1.5


class TestConfigDeprecation:
    def test_positional_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            cfg = AGCMConfig(24, 36)
        assert (cfg.nlat, cfg.nlon) == (24, 36)

    def test_keyword_and_named_constructors_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            AGCMConfig(nlat=24, nlon=36)
            AGCMConfig.tiny(seed=3)
            AGCMConfig.paper_2x2_5(nlayers=15)
            AGCMConfig.from_preset("tiny", physics_every=2)
