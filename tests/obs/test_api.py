"""The repro.api facade, Figure-1 parity and the profile/report CLI."""

from __future__ import annotations

import json

import pytest

import repro
from repro import api
from repro.__main__ import main as cli_main
from repro.obs import Observer, validate_chrome_trace
from repro.reporting import EXPERIMENTS, ExperimentSpec
from repro.verify.tolerances import CLOCK_RTOL

pytestmark = pytest.mark.obs

#: fig1 on its small 16-node mesh only: seconds instead of minutes.
FIG1_FAST = {"meshes": ((4, 4),), "nsteps": 4}


class TestFacade:
    def test_run_plain_returns_wrapped_experiment(self):
        res = api.run("fig4_6")
        assert isinstance(res, api.RunResult)
        assert res.experiment == "fig4_6"
        assert not res.observed
        assert res.value.ident == "fig4_6"
        assert res.render() == res.value.render()

    def test_unobserved_accessors_raise(self):
        res = api.run("fig4_6")
        with pytest.raises(ValueError, match="not observed"):
            res.trace()
        with pytest.raises(ValueError, match="not observed"):
            res.metrics()

    def test_obs_true_records_and_exports(self):
        res = api.run("fig1", obs=True, **FIG1_FAST)
        assert res.observed and len(res.observer.spans) > 0
        assert validate_chrome_trace(res.trace()) == []
        assert res.flamegraph()

    def test_existing_observer_aggregates_runs(self):
        obs = Observer()
        api.run("fig1", obs=obs, **FIG1_FAST)
        api.run("fig1", obs=obs, **FIG1_FAST)
        assert len(obs.runs) == 2
        assert {s.run for s in obs.spans} == {0, 1}

    def test_options_are_keyword_only(self):
        with pytest.raises(TypeError):
            api.run("fig1", Observer())  # obs must be by keyword
        with pytest.raises(TypeError, match="obs must be"):
            api.run("fig1", obs="yes")

    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            api.run("nope")

    def test_profile_writes_both_artefacts(self, tmp_path):
        t, m = tmp_path / "t.json", tmp_path / "m.json"
        res = api.profile("fig1", trace_out=str(t), metrics_out=str(m),
                          **FIG1_FAST)
        assert res.observed
        assert validate_chrome_trace(json.loads(t.read_text())) == []
        summary = json.loads(m.read_text())
        assert summary["runs"][0]["figure1"]["dynamics_fraction"] > 0

    def test_facade_exported_at_package_root(self):
        assert repro.api is api
        assert repro.RunResult is api.RunResult


class TestExperimentSpecs:
    def test_registry_values_are_specs(self):
        for ident, spec in EXPERIMENTS.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.name == ident
            assert spec.cost in ("fast", "medium", "slow")
            assert spec.doc  # every runner documents itself

    def test_specs_stay_callable(self):
        res = EXPERIMENTS["fig4_6"]()
        assert res.ident == "fig4_6"

    def test_bad_cost_tier_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            ExperimentSpec("x", lambda: None, cost="cheap")


class TestFigure1Parity:
    def test_span_fractions_match_component_breakdown(self):
        res = api.run("fig1", obs=True, **FIG1_FAST)
        reference = res.value.data[16]
        spans = res.figure1(run=0)
        assert spans["dynamics_fraction"] == pytest.approx(
            reference["dynamics_fraction"], rel=CLOCK_RTOL
        )
        assert spans["filtering_fraction"] == pytest.approx(
            reference["filtering_fraction"], rel=CLOCK_RTOL
        )


class TestCLI:
    def test_list_renders_cost_hints(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "[medium]" in out and "[fast" in out

    def test_report_rejects_unknown_flag(self, capsys):
        assert cli_main(["report", "--qiuck"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_profile_writes_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["profile", "fig4_6",
                         "--trace-out", str(tmp_path / "t.json"),
                         "--metrics-out"]) == 0
        doc = json.loads((tmp_path / "t.json").read_text())
        assert validate_chrome_trace(doc) == []
        # --metrics-out with no value falls back to the default name
        assert (tmp_path / "metrics-fig4_6.json").exists()

    def test_profile_rejects_unknown_flag_and_experiment(self, capsys):
        assert cli_main(["profile", "fig4_6", "--bogus"]) == 2
        assert cli_main(["profile", "nope"]) == 2
        assert cli_main(["profile"]) == 2


class TestRunResultRenderFallbacks:
    """The render() chain for values that are not ExperimentResults."""

    def test_value_with_render_method_wins(self):
        class Rendered:
            def render(self):
                return "custom table"

        res = api.wrap_sim_result("x", Rendered())
        assert res.render() == "custom table"

    def test_elapsed_only_value_renders_a_summary_line(self):
        class SimLike:
            elapsed = 12.5

        res = api.wrap_sim_result("my-sim", SimLike())
        assert res.render() == "my-sim: elapsed 12.5 virtual s"

    def test_bare_value_falls_back_to_repr(self):
        res = api.wrap_sim_result("raw", {"answer": 42})
        assert res.render() == "raw: {'answer': 42}"

    def test_wrap_sim_result_keeps_observer(self):
        obs = Observer()
        res = api.wrap_sim_result("w", object(), obs)
        assert res.observed and res.observer is obs
        assert api.wrap_sim_result("w", object()).observed is False


class TestArgumentResolvers:
    """The TypeError/ValueError paths of the facade's normalisers."""

    def test_resolve_observer_rejects_non_observers(self):
        for bad in ("yes", 1, 0, object()):
            with pytest.raises(TypeError, match="obs must be"):
                api._resolve_observer(bad)

    def test_resolve_observer_accepted_spellings(self):
        assert api._resolve_observer(None) is None
        assert api._resolve_observer(False) is None
        assert isinstance(api._resolve_observer(True), Observer)
        obs = Observer()
        assert api._resolve_observer(obs) is obs

    def test_resolve_guard_accepted_spellings(self):
        from repro.guard import GuardConfig

        assert api._resolve_guard(None) is None
        assert api._resolve_guard(False) is None
        assert isinstance(api._resolve_guard(True), GuardConfig)
        from_name = api._resolve_guard("halt")
        assert isinstance(from_name, GuardConfig)
        assert from_name.policy == "halt"
        cfg = GuardConfig()
        assert api._resolve_guard(cfg) is cfg

    def test_resolve_guard_rejects_other_types(self):
        with pytest.raises(TypeError, match="guard must be"):
            api._resolve_guard(123)
        with pytest.raises(TypeError, match="guard must be"):
            api._resolve_guard(["halt"])

    def test_unobserved_flamegraph_and_figure1_raise(self):
        res = api.run("fig4_6")
        with pytest.raises(ValueError, match="not observed"):
            res.flamegraph()
        with pytest.raises(ValueError, match="pass obs=True"):
            res.figure1()


class TestRunCampaignValidation:
    """workers=0 (and friends) must die at the facade, not inside
    multiprocessing."""

    def test_zero_workers_rejected_early(self):
        with pytest.raises(ValueError, match="workers.*positive.*got 0"):
            api.run_campaign(["fig4_6"], workers=0)

    def test_negative_workers_rejected_early(self):
        with pytest.raises(ValueError, match="workers.*positive.*got -2"):
            api.run_campaign(["fig4_6"], workers=-2)

    def test_non_integer_workers_rejected(self):
        with pytest.raises(TypeError, match="workers.*positive integer"):
            api.run_campaign(["fig4_6"], workers=2.5)
        with pytest.raises(TypeError, match="workers.*positive integer"):
            api.run_campaign(["fig4_6"], workers="four")

    def test_scheduler_guards_direct_callers_too(self):
        from repro.campaign.scheduler import run_campaign

        with pytest.raises(ValueError, match="workers.*positive"):
            run_campaign(["sleep:0.01#v"], workers=0)
