"""The repro.api facade, Figure-1 parity and the profile/report CLI."""

from __future__ import annotations

import json

import pytest

import repro
from repro import api
from repro.__main__ import main as cli_main
from repro.obs import Observer, validate_chrome_trace
from repro.reporting import EXPERIMENTS, ExperimentSpec
from repro.verify.tolerances import CLOCK_RTOL

pytestmark = pytest.mark.obs

#: fig1 on its small 16-node mesh only: seconds instead of minutes.
FIG1_FAST = {"meshes": ((4, 4),), "nsteps": 4}


class TestFacade:
    def test_run_plain_returns_wrapped_experiment(self):
        res = api.run("fig4_6")
        assert isinstance(res, api.RunResult)
        assert res.experiment == "fig4_6"
        assert not res.observed
        assert res.value.ident == "fig4_6"
        assert res.render() == res.value.render()

    def test_unobserved_accessors_raise(self):
        res = api.run("fig4_6")
        with pytest.raises(ValueError, match="not observed"):
            res.trace()
        with pytest.raises(ValueError, match="not observed"):
            res.metrics()

    def test_obs_true_records_and_exports(self):
        res = api.run("fig1", obs=True, **FIG1_FAST)
        assert res.observed and len(res.observer.spans) > 0
        assert validate_chrome_trace(res.trace()) == []
        assert res.flamegraph()

    def test_existing_observer_aggregates_runs(self):
        obs = Observer()
        api.run("fig1", obs=obs, **FIG1_FAST)
        api.run("fig1", obs=obs, **FIG1_FAST)
        assert len(obs.runs) == 2
        assert {s.run for s in obs.spans} == {0, 1}

    def test_options_are_keyword_only(self):
        with pytest.raises(TypeError):
            api.run("fig1", Observer())  # obs must be by keyword
        with pytest.raises(TypeError, match="obs must be"):
            api.run("fig1", obs="yes")

    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            api.run("nope")

    def test_profile_writes_both_artefacts(self, tmp_path):
        t, m = tmp_path / "t.json", tmp_path / "m.json"
        res = api.profile("fig1", trace_out=str(t), metrics_out=str(m),
                          **FIG1_FAST)
        assert res.observed
        assert validate_chrome_trace(json.loads(t.read_text())) == []
        summary = json.loads(m.read_text())
        assert summary["runs"][0]["figure1"]["dynamics_fraction"] > 0

    def test_facade_exported_at_package_root(self):
        assert repro.api is api
        assert repro.RunResult is api.RunResult


class TestExperimentSpecs:
    def test_registry_values_are_specs(self):
        for ident, spec in EXPERIMENTS.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.name == ident
            assert spec.cost in ("fast", "medium", "slow")
            assert spec.doc  # every runner documents itself

    def test_specs_stay_callable(self):
        res = EXPERIMENTS["fig4_6"]()
        assert res.ident == "fig4_6"

    def test_bad_cost_tier_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            ExperimentSpec("x", lambda: None, cost="cheap")


class TestFigure1Parity:
    def test_span_fractions_match_component_breakdown(self):
        res = api.run("fig1", obs=True, **FIG1_FAST)
        reference = res.value.data[16]
        spans = res.figure1(run=0)
        assert spans["dynamics_fraction"] == pytest.approx(
            reference["dynamics_fraction"], rel=CLOCK_RTOL
        )
        assert spans["filtering_fraction"] == pytest.approx(
            reference["filtering_fraction"], rel=CLOCK_RTOL
        )


class TestCLI:
    def test_list_renders_cost_hints(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "[medium]" in out and "[fast" in out

    def test_report_rejects_unknown_flag(self, capsys):
        assert cli_main(["report", "--qiuck"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_profile_writes_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["profile", "fig4_6",
                         "--trace-out", str(tmp_path / "t.json"),
                         "--metrics-out"]) == 0
        doc = json.loads((tmp_path / "t.json").read_text())
        assert validate_chrome_trace(doc) == []
        # --metrics-out with no value falls back to the default name
        assert (tmp_path / "metrics-fig4_6.json").exists()

    def test_profile_rejects_unknown_flag_and_experiment(self, capsys):
        assert cli_main(["profile", "fig4_6", "--bogus"]) == 2
        assert cli_main(["profile", "nope"]) == 2
        assert cli_main(["profile"]) == 2
