"""RunOptions: coercion, legacy-keyword shims and facade integration."""

from __future__ import annotations

import warnings

import pytest

from repro import api
from repro.options import UNSET, RunOptions, coerce_options, merge_legacy
from repro.serve.config import ServeConfig

pytestmark = pytest.mark.obs


class TestCoercion:
    def test_none_gives_defaults(self):
        opts = RunOptions.coerce(None)
        assert opts == RunOptions()
        assert opts.fast is False and opts.workers == 1

    def test_instance_passes_through(self):
        opts = RunOptions(fast=True)
        assert RunOptions.coerce(opts) is opts

    def test_dict_builds_options(self):
        opts = RunOptions.coerce({"fast": True, "workers": 3})
        assert opts.fast is True and opts.workers == 3

    def test_unknown_dict_key_gets_did_you_mean(self):
        with pytest.raises(TypeError, match=r"did you mean 'workers'"):
            RunOptions.coerce({"worker": 2})

    def test_unknown_dict_key_lists_known_options(self):
        with pytest.raises(TypeError, match="known options"):
            RunOptions.coerce({"definitely_not_a_knob": 1})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="must be a RunOptions"):
            RunOptions.coerce(["fast"])

    def test_coerce_options_alias(self):
        assert coerce_options({"fast": True}).fast is True

    def test_workers_validated_on_construction(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            RunOptions(workers=0)
        with pytest.raises(TypeError, match="positive integer"):
            RunOptions(workers=2.5)


class TestWith:
    def test_with_replaces_and_keeps_rest(self):
        opts = RunOptions(fast=True)
        other = opts.with_(workers=4)
        assert other.workers == 4 and other.fast is True
        assert opts.workers == 1  # frozen original untouched

    def test_with_unknown_field_errors(self):
        with pytest.raises(TypeError, match=r"did you mean 'faults'"):
            RunOptions().with_(fauts=True)


class TestMergeLegacy:
    def test_unset_knobs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = merge_legacy(None, "caller", obs=UNSET, fast=UNSET)
        assert opts == RunOptions()

    def test_passed_knob_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="fast= keyword"):
            opts = merge_legacy(None, "repro.api.run", fast=True)
        assert opts.fast is True

    def test_conflict_with_options_raises(self):
        with pytest.raises(ValueError, match="set it once, on options"):
            merge_legacy(RunOptions(fast=True), "caller", fast=False)

    def test_legacy_knob_alongside_other_options_fields_is_fine(self):
        with pytest.warns(DeprecationWarning):
            opts = merge_legacy(
                RunOptions(workers=2), "caller", fast=True
            )
        assert opts.fast is True and opts.workers == 2


class TestApiIntegration:
    def test_run_accepts_options(self):
        res = api.run("fig4_6", options=RunOptions(fast=True))
        assert res.run_options is not None
        assert res.run_options.fast is True
        assert res.value.ident == "fig4_6"

    def test_run_accepts_options_dict(self):
        res = api.run("fig4_6", options={"fast": True})
        assert res.run_options.fast is True

    def test_fast_and_legacy_obs_conflict_free(self):
        # Legacy obs= folds into an options value that carried fast.
        with pytest.warns(DeprecationWarning, match="obs= keyword"):
            res = api.run(
                "fig1", options={"fast": True}, obs=True,
                meshes=((4, 4),), nsteps=4,
            )
        # Live observer wins: the run is observed despite fast=True.
        assert res.observed

    def test_fastpath_matches_default_render(self):
        ref = api.run("fig4_6")
        fast = api.run("fig4_6", options=RunOptions(fast=True))
        assert fast.render() == ref.render()


class TestServeConfigFromOptions:
    def test_maps_shared_knobs(self):
        cfg = ServeConfig.from_options(
            RunOptions(fast=True, cache_dir="/tmp/c",
                       results_db="/tmp/r.sqlite", workers=3)
        )
        assert cfg.fast is True
        assert cfg.cache_dir == "/tmp/c"
        assert cfg.results_db == "/tmp/r.sqlite"
        assert cfg.pool_workers == 3

    def test_overrides_beat_mapped_fields(self):
        cfg = ServeConfig.from_options(
            RunOptions(workers=3), pool_workers=8, queue_limit=2
        )
        assert cfg.pool_workers == 8
        assert cfg.queue_limit == 2
