"""Exporters: Chrome-trace round-trip, folded stacks, metrics summary."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Observer,
    chrome_trace,
    folded_stacks,
    metrics_summary,
    render_metrics_markdown,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_summary,
)
from repro.parallel import GENERIC, Simulator

pytestmark = pytest.mark.obs


def worker(ctx):
    with ctx.span("outer"):
        with ctx.span("inner"):
            yield from ctx.compute(seconds=1.0 + ctx.rank)
        yield from ctx.compute(seconds=0.5)
    total = yield from ctx.allreduce(ctx.rank)
    if ctx.rank == 0:
        ctx.instant("milestone", total=total)
    return total


@pytest.fixture
def observed():
    obs = Observer()
    Simulator(3, GENERIC, observer=obs).run(worker)
    return obs


class TestChromeTrace:
    def test_round_trip_through_json_and_schema(self, observed, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(observed, path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        # identical to the in-memory document
        assert doc == json.loads(json.dumps(chrome_trace(observed)))

    def test_events_cover_spans_instants_metadata(self, observed):
        doc = chrome_trace(observed)
        by_ph = {}
        for ev in doc["traceEvents"]:
            by_ph.setdefault(ev["ph"], []).append(ev)
        assert len(by_ph["X"]) == len(observed.spans)
        assert len(by_ph["i"]) == len(observed.instants) == 1
        # process metadata for the run + thread metadata per rank
        names = {(ev["name"], ev["tid"]) for ev in by_ph["M"]
                 if ev["name"] == "thread_name"}
        assert len(names) == 3

    def test_one_track_per_rank_microsecond_units(self, observed):
        doc = chrome_trace(observed)
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert {ev["tid"] for ev in xs} == {0, 1, 2}
        inner = [ev for ev in xs if ev["name"] == "inner"]
        by_rank = {ev["tid"]: ev for ev in inner}
        assert by_rank[0]["dur"] == pytest.approx(1.0e6)
        assert by_rank[2]["dur"] == pytest.approx(3.0e6)

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace({"no": "events"})
        assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        bad_x = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": -1}
        ]}
        assert validate_chrome_trace(bad_x)


class TestSpanNestingInvariant:
    def test_children_contained_in_parents(self, observed):
        by_sid = {s.sid: s for s in observed.spans}
        for s in observed.spans:
            if s.parent is None:
                continue
            p = by_sid[s.parent]
            assert p.rank == s.rank and p.run == s.run
            assert p.start <= s.start <= s.end <= p.end


class TestFoldedStacks:
    def test_paths_and_exclusive_time(self, observed):
        lines = folded_stacks(observed).splitlines()
        rows = {}
        for line in lines:
            path, val = line.rsplit(" ", 1)
            rows[path] = int(val)
        outer_key = "run0:worker;rank 0;outer"
        inner_key = "run0:worker;rank 0;outer;inner"
        assert rows[inner_key] == pytest.approx(1.0e6)
        # outer's exclusive time excludes inner: only the 0.5 s tail
        assert rows[outer_key] == pytest.approx(0.5e6)


class TestMetricsSummary:
    def test_summary_structure_and_markdown(self, observed, tmp_path):
        summary = metrics_summary(observed)
        (run,) = summary["runs"]
        assert run["label"] == "worker"
        assert run["nranks"] == 3
        assert run["spans"] == len(observed.spans)
        assert summary["metrics"]["counters"]["sim.messages_sent"] > 0
        md = render_metrics_markdown(summary)
        assert "worker" in md
        path = tmp_path / "metrics.json"
        write_metrics_summary(observed, path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(summary)
        )
