"""MetricsRegistry.merge edge cases.

Merge is how the campaign parent unifies per-worker registries; these
pin its contract: counters add, gauges take the incoming value
(last-writer-wins), and the ``as_dict`` wire form round-trips.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry


class TestEmptyMerges:
    def test_empty_into_empty(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.merge(b)
        assert len(a) == 0
        assert a.as_dict() == {"counters": {}, "gauges": {}}

    def test_empty_into_populated_changes_nothing(self):
        a = MetricsRegistry()
        a.counter("sim.messages").inc(7)
        a.gauge("queue.depth").set(3)
        before = a.as_dict()
        a.merge(MetricsRegistry())
        a.merge({})  # dict form without counters/gauges keys at all
        assert a.as_dict() == before

    def test_populated_into_empty_copies_values(self):
        b = MetricsRegistry()
        b.counter("sim.messages").inc(7)
        b.gauge("queue.depth").set(3)
        a = MetricsRegistry()
        a.merge(b)
        assert a.as_dict() == b.as_dict()


class TestGaugeConflicts:
    def test_last_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.gauge("g").value == 2.0
        # Direction matters: merging a's old dict back flips it again.
        a.merge({"gauges": {"g": 1.0}})
        assert a.gauge("g").value == 1.0

    def test_incoming_zero_overwrites(self):
        a = MetricsRegistry()
        a.gauge("g").set(5.0)
        a.merge({"gauges": {"g": 0.0}})
        assert a.gauge("g").value == 0.0


class TestCounterSemantics:
    def test_counters_add_not_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.merge(b)
        assert a.counter("c").value == 5.0

    def test_large_counts_accumulate_as_float(self):
        """Counts past 2**53 lose integer precision but never raise —
        workers shipping huge message totals must merge safely."""
        a, b = MetricsRegistry(), MetricsRegistry()
        big = 2**62
        a.counter("c").inc(big)
        b.counter("c").inc(big)
        a.merge(b)
        value = a.counter("c").value
        assert isinstance(value, float)
        assert value == pytest.approx(2.0 * big)

    def test_kind_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("m").inc()
        with pytest.raises(TypeError, match="already registered"):
            a.merge({"gauges": {"m": 1.0}})


class TestRoundTrip:
    def test_merge_then_as_dict_round_trip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("sim.messages").inc(4)
        a.gauge("queue.depth").set(2)
        b.counter("sim.messages").inc(6)
        b.counter("sim.bytes").inc(1024)
        b.gauge("queue.depth").set(9)
        a.merge(b)

        # A fresh registry fed the merged wire form reproduces it.
        c = MetricsRegistry()
        c.merge(a.as_dict())
        assert c.as_dict() == a.as_dict()
        assert c.as_dict() == {
            "counters": {"sim.bytes": 1024.0, "sim.messages": 10.0},
            "gauges": {"queue.depth": 9.0},
        }
