"""Tests for the 3-D decomposition collectives: pillar transposes,
vertical halo exchange and leap-format scheduling."""

import numpy as np
import pytest

from repro.grid.decomposition3d import Decomposition3D
from repro.parallel import GENERIC, ProcessorMesh, Simulator
from repro.parallel import engine as _engine
from repro.physics.workload import leap_schedule, pillar_column_share


def run(nranks, program, *args, legacy=False):
    if legacy:
        with _engine.legacy_engine():
            return Simulator(nranks, GENERIC).run(program, *args)
    return Simulator(nranks, GENERIC).run(program, *args)


class TestPillarTranspose:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7])
    @pytest.mark.parametrize("legacy", [False, True])
    def test_forward_is_alltoall(self, size, legacy):
        def program(ctx):
            chunks = [
                np.full((2, 2), 10 * ctx.rank + d) for d in range(size)
            ]
            got = yield from ctx.transpose_to_levels(chunks)
            # Indexed by source member: got[s] is what s sent to us.
            return [float(g[0, 0]) for g in got]

        res = run(size, program, legacy=legacy)
        for r, row in enumerate(res.returns):
            assert row == [10 * s + r for s in range(size)]

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_back_inverts_forward(self, size):
        def program(ctx):
            chunks = [
                np.array([ctx.rank * size + d]) for d in range(size)
            ]
            fwd = yield from ctx.transpose_to_levels(chunks)
            back = yield from ctx.transpose_from_levels(fwd)
            return [float(b[0]) for b in back]

        res = run(size, program)
        # Transposing twice restores each rank's own chunks.
        for r, row in enumerate(res.returns):
            assert row == [r * size + d for d in range(size)]

    def test_leap_rotation_differs_per_member(self):
        # The rounds rotate partners (dest = (rank + s) % size), so no
        # two pillar members address the same destination at the same
        # round — the leap-format property the schedule helper mirrors.
        assert leap_schedule(4, 0) != leap_schedule(4, 1)


class TestVerticalHalo:
    @pytest.mark.parametrize("kprocs", [1, 2, 3])
    @pytest.mark.parametrize("legacy", [False, True])
    def test_ghost_layers_match_neighbours(self, kprocs, legacy):
        from repro.parallel.collectives import exchange_vertical_halo

        nlev = 6
        mesh = ProcessorMesh(1, 1, kprocs)
        decomp = Decomposition3D(4, 5, nlev, mesh)
        field = np.arange(4 * 5 * nlev, dtype=float).reshape(4, 5, nlev)
        blocks = decomp.scatter(field)

        def program(ctx):
            padded = yield from exchange_vertical_halo(
                ctx, decomp, blocks[ctx.rank]
            )
            return padded

        res = run(mesh.size, program, legacy=legacy)
        for r, padded in enumerate(res.returns):
            sub = decomp.subdomain(r)
            # Interior layers are the local slab.
            np.testing.assert_array_equal(
                padded[:, :, 1:-1], blocks[r]
            )
            # Bottom ghost: neighbour's top layer, or replicated edge.
            want_bottom = (
                field[:, :, sub.lev0 - 1]
                if sub.lev0 > 0 else field[:, :, 0]
            )
            np.testing.assert_array_equal(padded[:, :, 0], want_bottom)
            want_top = (
                field[:, :, sub.lev1]
                if sub.lev1 < nlev else field[:, :, nlev - 1]
            )
            np.testing.assert_array_equal(padded[:, :, -1], want_top)

    def test_shape_mismatch_rejected(self):
        from repro.parallel.collectives import exchange_vertical_halo

        mesh = ProcessorMesh(1, 1, 2)
        decomp = Decomposition3D(4, 4, 4, mesh)

        def program(ctx):
            yield from exchange_vertical_halo(
                ctx, decomp, np.zeros((1, 1, 1))
            )

        with pytest.raises(ValueError):
            run(2, program)


class TestLeapSchedule:
    def test_identity_at_level_zero(self):
        assert leap_schedule(5, 0) == [0, 1, 2, 3, 4]

    def test_rotated_by_level(self):
        assert leap_schedule(4, 1) == [1, 2, 3, 0]
        assert leap_schedule(4, 3) == [3, 0, 1, 2]

    @pytest.mark.parametrize("n,k", [(1, 0), (3, 7), (6, 2)])
    def test_is_a_permutation(self, n, k):
        assert sorted(leap_schedule(n, k)) == list(range(n))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            leap_schedule(0, 0)


class TestPillarColumnShare:
    def test_shares_cover_all_columns(self):
        shares = [pillar_column_share(10, 3, k) for k in range(3)]
        assert sum(shares) == 10
        assert max(shares) - min(shares) <= 1

    def test_whole_tile_without_vertical_split(self):
        assert pillar_column_share(42, 1, 0) == 42
