"""Tests for the processor mesh topology."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.topology import ProcessorMesh


class TestBasics:
    def test_size(self):
        assert ProcessorMesh(8, 30).size == 240

    def test_rank_coords_roundtrip(self):
        mesh = ProcessorMesh(3, 5)
        for rank in range(mesh.size):
            i, j = mesh.coords_of(rank)
            assert mesh.rank_of(i, j) == rank

    def test_row_major_numbering(self):
        mesh = ProcessorMesh(2, 3)
        assert mesh.rank_of(0, 0) == 0
        assert mesh.rank_of(0, 2) == 2
        assert mesh.rank_of(1, 0) == 3

    def test_describe(self):
        assert ProcessorMesh(8, 30).describe() == "8 x 30"

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProcessorMesh(0, 3)

    def test_coords_out_of_range(self):
        with pytest.raises(IndexError):
            ProcessorMesh(2, 2).coords_of(4)
        with pytest.raises(IndexError):
            ProcessorMesh(2, 2).rank_of(2, 0)


class TestNeighbours:
    def test_longitude_periodic(self):
        mesh = ProcessorMesh(2, 4)
        r = mesh.rank_of(1, 3)
        assert mesh.east_of(r) == mesh.rank_of(1, 0)
        assert mesh.west_of(mesh.rank_of(0, 0)) == mesh.rank_of(0, 3)

    def test_latitude_closed_at_poles(self):
        mesh = ProcessorMesh(3, 2)
        assert mesh.south_of(mesh.rank_of(0, 1)) is None
        assert mesh.north_of(mesh.rank_of(2, 0)) is None
        assert mesh.north_of(mesh.rank_of(1, 0)) == mesh.rank_of(2, 0)

    @given(m=st.integers(1, 8), n=st.integers(1, 8), data=st.data())
    def test_east_west_inverse(self, m, n, data):
        mesh = ProcessorMesh(m, n)
        rank = data.draw(st.integers(0, mesh.size - 1))
        assert mesh.west_of(mesh.east_of(rank)) == rank
        assert mesh.east_of(mesh.west_of(rank)) == rank


class TestGroups:
    def test_rows_and_columns_partition_mesh(self):
        mesh = ProcessorMesh(3, 4)
        all_from_rows = sorted(
            r for i in range(3) for r in mesh.row_ranks(i)
        )
        all_from_cols = sorted(
            r for j in range(4) for r in mesh.col_ranks(j)
        )
        assert all_from_rows == list(range(12))
        assert all_from_cols == list(range(12))

    def test_row_ranks_share_latitude(self):
        mesh = ProcessorMesh(3, 4)
        for r in mesh.row_ranks(1):
            assert mesh.coords_of(r)[0] == 1
