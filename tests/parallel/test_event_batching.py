"""Tests for the array-based event engine: cohort-queue ordering
(property-tested), the bulk group-synchronous exchange executor, the
legacy-engine escape hatch and the fastpath contract."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import collectives as coll
from repro.parallel import engine as _engine
from repro.parallel.events import Exchange
from repro.parallel.machine import GENERIC
from repro.parallel.scheduler import (
    _BULK_MIN_MSGS,
    CohortQueue,
    DeadlockError,
    Simulator,
    _HeapQueue,
)

# Small clock alphabet so timestamp ties (the interesting case for
# cohort formation) occur in nearly every sampled script.
_CLOCKS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0])
_RANKS = st.integers(min_value=0, max_value=63)
_ENTRIES = st.lists(st.tuples(_CLOCKS, _RANKS), max_size=80)


def _drain(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


class TestCohortQueueOrdering:
    @given(entries=_ENTRIES)
    @settings(max_examples=200, deadline=None)
    def test_drain_is_exact_clock_rank_order(self, entries):
        """With no interleaved pushes, dispatch is exactly sorted
        (clock, rank) order — identical to a heap."""
        assert _drain(CohortQueue(iter(entries))) == sorted(entries)

    @given(entries=_ENTRIES)
    @settings(max_examples=100, deadline=None)
    def test_heap_queue_agrees_with_sort(self, entries):
        assert _drain(_HeapQueue(iter(entries))) == sorted(entries)

    @given(
        entries=_ENTRIES,
        script=st.lists(
            st.tuples(st.sampled_from(["push", "pop"]), _CLOCKS, _RANKS),
            max_size=120,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_interleaved_pushes_keep_timestamps_monotone(
        self, entries, script
    ):
        """Under the engine's push discipline (wake-ups never carry a
        clock below the waker's current time), popped timestamps never
        regress, ties inside each cohort dispatch in rank order, and
        nothing is lost or invented."""
        queue = CohortQueue(iter(entries))
        pushed = list(entries)
        popped = []
        now = 0.0
        for action, dt, rank in script:
            if action == "push":
                clock = now + dt  # engine invariant: clock >= now
                queue.push(clock, rank)
                pushed.append((clock, rank))
            else:
                entry = queue.pop()
                if entry is not None:
                    assert entry[0] >= now
                    if popped and entry[0] == popped[-1][0]:
                        # Same-timestamp cohorts drain in rank order;
                        # a tie that spans two cohorts re-sorts, so
                        # only in-cohort ties are rank-monotone — but
                        # a fresh cohort at the same clock still never
                        # pops below the engine's current time.
                        pass
                    now = entry[0]
                    popped.append(entry)
        popped.extend(_drain(queue))
        clocks = [c for c, _ in popped]
        assert clocks == sorted(clocks)
        assert sorted(popped) == sorted(pushed)

    def test_same_clock_cohort_pops_in_rank_order(self):
        queue = CohortQueue([(1.0, 5), (1.0, 1), (0.5, 7), (1.0, 3)])
        assert _drain(queue) == [(0.5, 7), (1.0, 1), (1.0, 3), (1.0, 5)]

    def test_push_during_cohort_drain_dispatches_later(self):
        queue = CohortQueue([(1.0, 2), (1.0, 4)])
        assert queue.pop() == (1.0, 2)
        queue.push(1.0, 0)  # arrives while the t=1 cohort drains
        # The in-progress cohort finishes first; the new entry forms
        # the next cohort at the same timestamp (never earlier).
        assert queue.pop() == (1.0, 4)
        assert queue.pop() == (1.0, 0)
        assert queue.pop() is None

    def test_len_counts_cohort_remainder(self):
        queue = CohortQueue([(1.0, 0), (1.0, 1), (2.0, 2)])
        assert len(queue) == 3
        queue.pop()
        assert len(queue) == 2


# ----------------------------------------------------------------------
# bulk group-synchronous exchange
# ----------------------------------------------------------------------

def _alltoall_program(ctx, data):
    out = yield from ctx.alltoall(
        [data[ctx.rank, d] for d in range(ctx.size)]
    )
    return np.stack(out)


def _run_alltoall(p, data, legacy=False):
    if legacy:
        with _engine.legacy_engine():
            return Simulator(p, GENERIC).run(_alltoall_program, data)
    return Simulator(p, GENERIC).run(_alltoall_program, data)


def _bulk_rank_count():
    """Smallest p whose pairwise all-to-all crosses the bulk threshold."""
    p = 2
    while p * (p - 1) < _BULK_MIN_MSGS:
        p += 1
    return p


class TestBulkExchange:
    def test_bulk_alltoall_matches_legacy_engine_exactly(self):
        p = _bulk_rank_count()
        rng = np.random.default_rng(7)
        data = rng.standard_normal((p, p, 3))
        res = _run_alltoall(p, data)
        ref = _run_alltoall(p, data, legacy=True)
        for r in range(p):
            np.testing.assert_array_equal(res.returns[r], ref.returns[r])
        assert res.clocks == ref.clocks
        assert res.elapsed == ref.elapsed
        for a, b in zip(res.trace.ranks, ref.trace.ranks):
            assert a.send_busy_time == b.send_busy_time
            assert a.recv_busy_time == b.recv_busy_time
            assert a.recv_wait_time == b.recv_wait_time
            assert a.messages_sent == b.messages_sent
            assert a.messages_received == b.messages_received
            assert a.bytes_sent == b.bytes_sent
            assert a.bytes_received == b.bytes_received

    def test_below_threshold_alltoall_still_matches(self):
        p = 6  # per-exchange vectorized path, not the bulk executor
        rng = np.random.default_rng(11)
        data = rng.standard_normal((p, p, 2))
        res = _run_alltoall(p, data)
        ref = _run_alltoall(p, data, legacy=True)
        assert res.clocks == ref.clocks
        for r in range(p):
            np.testing.assert_array_equal(res.returns[r], ref.returns[r])

    def test_mismatched_group_schedule_raises(self):
        # 32 members x 16 rounds = 512 messages: bulk-eligible, but the
        # receive tags do not match the partner's send tags.
        p, rounds = 32, 16
        group = tuple(range(p))

        def bad_program(ctx):
            right = (ctx.rank + 1) % p
            left = (ctx.rank - 1) % p
            sends = tuple(
                (right, float(ctx.rank), r, None, True)
                for r in range(rounds)
            )
            recvs = tuple((left, r + 1) for r in range(rounds))
            yield Exchange(sends=sends, recvs=recvs, group=group)
            return None

        with pytest.raises(ValueError, match="per-round matched"):
            Simulator(p, GENERIC).run(bad_program)

    def test_partial_group_arrival_reports_parked_deadlock(self):
        # Rank 0 never joins the collective its group promises, so the
        # other members park forever; the wait-graph must say so.
        p, rounds = 32, 16
        group = tuple(range(p))

        def program(ctx):
            if ctx.rank == 0:
                return None
            right = (ctx.rank + 1) % p
            left = (ctx.rank - 1) % p
            sends = tuple(
                (right, float(ctx.rank), r, None, True)
                for r in range(rounds)
            )
            recvs = tuple((left, r) for r in range(rounds))
            yield Exchange(sends=sends, recvs=recvs, group=group)
            return None

        with pytest.raises(DeadlockError, match="parked for bulk"):
            Simulator(p, GENERIC).run(program)


# ----------------------------------------------------------------------
# fastpath + engine selection contracts
# ----------------------------------------------------------------------

def _collective_mix_program(ctx, data):
    mine = data[ctx.rank]
    gathered = yield from ctx.allgather(mine)
    total = yield from coll.allreduce_recursive_doubling(
        ctx, float(mine.sum())
    )
    return {"g": np.stack(gathered), "t": total}


class TestFastpathContract:
    def test_fastpath_results_bit_identical(self):
        p = 8
        rng = np.random.default_rng(3)
        data = rng.standard_normal((p, 5))
        ref = Simulator(p, GENERIC).run(_collective_mix_program, data)
        with _engine.fastpath():
            fast = Simulator(p, GENERIC).run(_collective_mix_program, data)
        assert fast.clocks == ref.clocks
        assert fast.elapsed == ref.elapsed
        for r in range(p):
            np.testing.assert_array_equal(
                fast.returns[r]["g"], ref.returns[r]["g"]
            )
            assert fast.returns[r]["t"] == ref.returns[r]["t"]

    def test_fastpath_flag_restores(self):
        assert not _engine.fastpath_active()
        with _engine.fastpath():
            assert _engine.fastpath_active()
        assert not _engine.fastpath_active()

    def test_legacy_engine_flag_restores(self):
        assert _engine.batched()
        with _engine.legacy_engine():
            assert not _engine.batched()
        assert _engine.batched()


class TestSimbenchProbe:
    def test_probe_reports_metrics_and_bit_identity(self):
        from repro.perf.simbench import run_probe

        # Tiny probe: run_probe itself asserts both engines agree on
        # the virtual makespan (the bit-identity canary).
        metrics = run_probe(nranks=12, rounds=1)
        assert metrics["sim_events_per_second"] > 0
        assert metrics["sim_events_per_second_loop"] > 0
        assert metrics["sim_event_engine_speedup"] > 0
        assert metrics["sim_probe_ranks"] == 12.0
