"""Property tests for the 3-D processor mesh (AGCM-3DLF).

The 2-D mesh is the ``nlev_procs == 1`` special case, so besides the
3-D round-trip/neighbour properties these tests pin the *golden* 2-D
layouts: every observable of ``ProcessorMesh(m, n)`` must be unchanged
by the third axis defaulting to 1.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.topology import ProcessorMesh

dims = st.integers(1, 6)


@st.composite
def mesh_and_rank(draw):
    mesh = ProcessorMesh(draw(dims), draw(dims), draw(dims))
    rank = draw(st.integers(0, mesh.size - 1))
    return mesh, rank


class TestRoundTrip:
    @given(mesh_and_rank())
    def test_rank_coords3_bijection(self, mr):
        mesh, rank = mr
        i, j, k = mesh.coords3_of(rank)
        assert 0 <= i < mesh.nlat_procs
        assert 0 <= j < mesh.nlon_procs
        assert 0 <= k < mesh.nlev_procs
        assert mesh.rank_of(i, j, k) == rank

    @given(m=dims, n=dims, k=dims)
    def test_all_coords_enumerate_all_ranks(self, m, n, k):
        mesh = ProcessorMesh(m, n, k)
        ranks = {
            mesh.rank_of(i, j, l)
            for i in range(m) for j in range(n) for l in range(k)
        }
        assert ranks == set(range(mesh.size))

    @given(mesh_and_rank())
    def test_coords_of_is_horizontal_projection(self, mr):
        mesh, rank = mr
        i, j, _ = mesh.coords3_of(rank)
        assert mesh.coords_of(rank) == (i, j)


class TestNeighbours:
    @given(mesh_and_rank())
    def test_east_west_inverse_preserves_level(self, mr):
        mesh, rank = mr
        assert mesh.west_of(mesh.east_of(rank)) == rank
        assert mesh.east_of(mesh.west_of(rank)) == rank
        assert (mesh.coords3_of(mesh.east_of(rank))[2]
                == mesh.coords3_of(rank)[2])

    @given(mesh_and_rank())
    def test_north_south_symmetry(self, mr):
        mesh, rank = mr
        n = mesh.north_of(rank)
        if n is None:
            assert mesh.coords3_of(rank)[0] == mesh.nlat_procs - 1
        else:
            assert mesh.south_of(n) == rank

    @given(mesh_and_rank())
    def test_up_down_symmetry_and_bounds(self, mr):
        mesh, rank = mr
        k = mesh.coords3_of(rank)[2]
        up = mesh.up_of(rank)
        down = mesh.down_of(rank)
        # The vertical is *not* periodic: None exactly at the ends.
        assert (up is None) == (k == mesh.nlev_procs - 1)
        assert (down is None) == (k == 0)
        if up is not None:
            assert mesh.down_of(up) == rank
        if down is not None:
            assert mesh.up_of(down) == rank


class TestGroups:
    @given(m=dims, n=dims, k=dims)
    def test_pillars_partition_mesh(self, m, n, k):
        mesh = ProcessorMesh(m, n, k)
        seen = sorted(
            r
            for i in range(m) for j in range(n)
            for r in mesh.pillar_ranks(i, j)
        )
        assert seen == list(range(mesh.size))

    @given(mesh_and_rank())
    def test_pillar_orders_levels(self, mr):
        mesh, rank = mr
        i, j, k = mesh.coords3_of(rank)
        pillar = mesh.pillar_ranks(i, j)
        assert len(pillar) == mesh.nlev_procs
        assert pillar[k] == rank
        assert [mesh.coords3_of(r)[2] for r in pillar] == list(
            range(mesh.nlev_procs)
        )

    @given(m=dims, n=dims, k=dims, data=st.data())
    def test_rows_and_cols_partition_each_level(self, m, n, k, data):
        mesh = ProcessorMesh(m, n, k)
        klev = data.draw(st.integers(0, k - 1))
        level = {
            mesh.rank_of(i, j, klev) for i in range(m) for j in range(n)
        }
        from_rows = {r for i in range(m) for r in mesh.row_ranks(i, klev)}
        from_cols = {r for j in range(n) for r in mesh.col_ranks(j, klev)}
        assert from_rows == level
        assert from_cols == level


class TestDegenerate:
    @given(n=dims)
    def test_1xNx1_is_a_ring(self, n):
        mesh = ProcessorMesh(1, n, 1)
        for r in range(n):
            assert mesh.east_of(r) == (r + 1) % n
            assert mesh.north_of(r) is None
            assert mesh.up_of(r) is None

    @given(m=dims, k=dims)
    def test_Mx1xK_columns(self, m, k):
        mesh = ProcessorMesh(m, 1, k)
        for r in range(mesh.size):
            # A single longitude column: east/west wrap onto itself.
            assert mesh.east_of(r) == r
            assert mesh.west_of(r) == r


class TestGolden2D:
    """At nlev_procs=1 every observable matches the historical 2-D mesh."""

    @given(m=dims, n=dims)
    def test_layout_unchanged(self, m, n):
        m2 = ProcessorMesh(m, n)
        m3 = ProcessorMesh(m, n, 1)
        assert m2 == m3
        assert m2.size == m * n
        for r in range(m2.size):
            assert m2.coords_of(r) == m3.coords_of(r)
            assert m3.coords3_of(r) == (*m2.coords_of(r), 1 - 1)

    def test_golden_row_major_numbering(self):
        mesh = ProcessorMesh(2, 3, 1)
        assert [mesh.rank_of(i, j) for i in range(2) for j in range(3)] \
            == list(range(6))

    def test_describe_omits_unit_level(self):
        assert ProcessorMesh(8, 30, 1).describe() == "8 x 30"
        assert ProcessorMesh(8, 30, 2).describe() == "8 x 30 x 2"

    def test_is_3d_flag(self):
        assert not ProcessorMesh(4, 4).is_3d
        assert ProcessorMesh(2, 2, 4).is_3d

    @given(m=dims, n=dims)
    def test_buddy_ward_unchanged_at_unit_level(self, m, n):
        m2 = ProcessorMesh(m, n)
        m3 = ProcessorMesh(m, n, 1)
        for r in range(m2.size):
            assert m2.buddy_of(r) == m3.buddy_of(r)
            assert m2.ward_of(r) == m3.ward_of(r)

    @given(mesh_and_rank())
    def test_buddy_ward_inverse_in_3d(self, mr):
        mesh, rank = mr
        buddy = mesh.buddy_of(rank)
        if mesh.size == 1:
            assert buddy is None
        else:
            assert mesh.ward_of(buddy) == rank


class TestValidation:
    def test_bad_level_count(self):
        with pytest.raises(ValueError):
            ProcessorMesh(2, 2, 0)

    def test_rank_of_level_out_of_range(self):
        with pytest.raises(IndexError):
            ProcessorMesh(2, 2, 2).rank_of(0, 0, 2)
