"""Tests for machine cost models."""

import pytest

from repro.parallel.machine import (
    GENERIC,
    PARAGON,
    SP2,
    T3D,
    MachineModel,
    available_machines,
    make_machine,
)


class TestPresets:
    def test_all_presets_resolvable(self):
        for name in available_machines():
            assert make_machine(name).name == name

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            make_machine("cm5")

    def test_lookup_case_insensitive(self):
        assert make_machine("T3D") is T3D

    def test_t3d_faster_than_paragon(self):
        """The paper's 2.5x observation comes from the flop-rate ratio."""
        assert T3D.flop_rate / PARAGON.flop_rate == pytest.approx(2.5)
        assert T3D.latency < PARAGON.latency

    def test_paragon_relative_miss_cost_higher(self):
        """Paragon loses more to cache misses (the 5x vs 2.6x block-array gap)."""
        paragon_flops_per_miss = PARAGON.cache_miss_penalty * PARAGON.flop_rate
        t3d_flops_per_miss = T3D.cache_miss_penalty * T3D.flop_rate
        assert paragon_flops_per_miss > t3d_flops_per_miss


class TestCostFunctions:
    def test_message_time_linear_in_bytes(self):
        t1 = GENERIC.message_time(1000)
        t2 = GENERIC.message_time(2000)
        assert t2 - t1 == pytest.approx(1000 / GENERIC.bandwidth)

    def test_message_time_has_latency_floor(self):
        assert GENERIC.message_time(0) == GENERIC.latency

    def test_compute_time_flop_bound(self):
        assert GENERIC.compute_time(flops=GENERIC.flop_rate) == pytest.approx(1.0)

    def test_compute_time_memory_bound(self):
        t = GENERIC.compute_time(flops=1.0, mem_bytes=GENERIC.mem_bandwidth)
        assert t == pytest.approx(1.0)

    def test_vector_startup_degrades_short_loops(self):
        long = PARAGON.compute_time(1e6, inner_length=1000)
        short = PARAGON.compute_time(1e6, inner_length=5)
        assert short > long
        expected = (5 + PARAGON.vector_startup) / 5
        assert short / PARAGON.compute_time(1e6) == pytest.approx(expected)

    def test_vector_startup_charged_time_pinned(self):
        # Pin the absolute charged time for a known (L, startup, flops)
        # triple, asserting the docstring's two equivalent statements of
        # the model really are the same number: the effective rate drops
        # by L / (L + s), i.e. the compute-bound time grows by
        # (L + s) / L.  With L == s the charge is exactly double.
        m = GENERIC.with_overrides(vector_startup=8.0)
        flops = 1e6
        base = flops / m.flop_rate
        assert m.compute_time(flops, inner_length=8) == pytest.approx(
            2.0 * base
        )
        # General triple: L=16, s=8 -> factor 24/16 = 1.5.
        assert m.compute_time(flops, inner_length=16) == pytest.approx(
            base * (16 + 8) / 16
        )
        # The startup penalty never inflates the memory-bandwidth bound.
        mem = m.mem_bandwidth  # 1 second of streaming
        assert m.compute_time(
            flops=1.0, mem_bytes=mem, inner_length=2
        ) == pytest.approx(1.0)

    def test_vector_startup_zero_on_generic(self):
        assert GENERIC.compute_time(1e6, inner_length=2) == pytest.approx(
            GENERIC.compute_time(1e6)
        )

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            GENERIC.compute_time(-1)

    def test_bad_inner_length_rejected(self):
        with pytest.raises(ValueError):
            GENERIC.compute_time(1.0, inner_length=0)

    def test_send_busy_less_than_message_time(self):
        assert PARAGON.send_busy_time(1024) <= PARAGON.message_time(1024)


class TestValidation:
    def test_overrides(self):
        m = GENERIC.with_overrides(latency=1e-3)
        assert m.latency == 1e-3
        assert m.bandwidth == GENERIC.bandwidth

    def test_bad_overhead(self):
        with pytest.raises(ValueError):
            GENERIC.with_overrides(overhead=GENERIC.latency * 2)

    def test_bad_cache_geometry(self):
        with pytest.raises(ValueError):
            GENERIC.with_overrides(cache_size=1000)  # not line*assoc multiple

    def test_nonpositive_rates(self):
        with pytest.raises(ValueError):
            GENERIC.with_overrides(flop_rate=0)
