"""Stress and property tests of the discrete-event scheduler.

Randomised SPMD programs that are deadlock-free by construction, checked
for determinism, message conservation and clock sanity — the invariants
everything else in the package leans on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import GENERIC, PARAGON, Simulator


def _random_program_factory(seed: int, nrounds: int):
    """An SPMD program of random neighbour exchanges and collectives.

    Every rank derives the same schedule from the shared seed, so all
    collectives match up and every send has a posted receive.
    """

    def program(ctx):
        rng = np.random.default_rng(seed)
        total = 0.0
        for round_idx in range(nrounds):
            op = rng.integers(0, 4)
            shift = int(rng.integers(1, max(2, ctx.size)))
            nelem = int(rng.integers(1, 64))
            if op == 0:
                yield from ctx.compute(seconds=1e-4 * ((ctx.rank + round_idx) % 3))
            elif op == 1 and ctx.size > 1:
                dest = (ctx.rank + shift) % ctx.size
                src = (ctx.rank - shift) % ctx.size
                got = yield from ctx.sendrecv(
                    dest=dest,
                    payload=np.full(nelem, float(ctx.rank)),
                    source=src,
                    tag=round_idx,
                )
                total += float(got.sum())
            elif op == 2:
                value = yield from ctx.allreduce(float(ctx.rank))
                total += value
            else:
                yield from ctx.barrier(tag=round_idx)
        return total

    return program


class TestRandomPrograms:
    @given(
        seed=st.integers(0, 10_000),
        nranks=st.integers(1, 9),
        nrounds=st.integers(1, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_runs_to_completion_deterministically(self, seed, nranks, nrounds):
        program = _random_program_factory(seed, nrounds)
        r1 = Simulator(nranks, GENERIC).run(program)
        r2 = Simulator(nranks, GENERIC).run(program)
        assert r1.clocks == r2.clocks
        assert r1.returns == r2.returns
        assert r1.trace.total_messages() == r2.trace.total_messages()

    @given(seed=st.integers(0, 10_000), nranks=st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_message_conservation(self, seed, nranks):
        program = _random_program_factory(seed, 8)
        res = Simulator(nranks, GENERIC).run(program)
        sent = sum(r.messages_sent for r in res.trace.ranks)
        received = sum(r.messages_received for r in res.trace.ranks)
        assert sent == received
        assert sum(r.bytes_sent for r in res.trace.ranks) == sum(
            r.bytes_received for r in res.trace.ranks
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_clocks_monotone_and_elapsed_is_max(self, seed):
        program = _random_program_factory(seed, 10)
        res = Simulator(5, GENERIC).run(program)
        assert all(c >= 0 for c in res.clocks)
        assert res.elapsed == max(res.clocks)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_machine_scales_but_preserves_results(self, seed):
        """A slower machine changes clocks, never data."""
        program = _random_program_factory(seed, 6)
        fast = Simulator(4, GENERIC).run(program)
        slow = Simulator(4, PARAGON).run(program)
        assert fast.returns == slow.returns
        assert slow.elapsed >= fast.elapsed


class TestScale:
    def test_many_ranks(self):
        """240 virtual ranks (the paper's production size) stay cheap."""

        def program(ctx):
            yield from ctx.compute(seconds=1e-6 * ctx.rank)
            total = yield from ctx.allreduce(1)
            return total

        res = Simulator(240, GENERIC).run(program)
        assert res.returns == [240] * 240

    def test_deep_message_chains(self):
        """A long sequential pipeline exercises the ready-heap path."""

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 0)
                final = yield from ctx.recv(ctx.size - 1)
                return final
            token = yield from ctx.recv(ctx.rank - 1)
            token += ctx.rank
            yield from ctx.send((ctx.rank + 1) % ctx.size, token)
            return token

        res = Simulator(30, GENERIC).run(program)
        assert res.returns[0] == sum(range(30))
