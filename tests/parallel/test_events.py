"""Tests for event primitives and payload sizing."""

import numpy as np
import pytest

from repro.parallel.events import Barrier, Compute, Recv, Send, payload_nbytes


class TestPayloadNbytes:
    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(np.zeros((3, 4), dtype=np.float32)) == 48

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(None) == 8

    def test_numeric_tuple(self):
        assert payload_nbytes((1, 2.0, 3)) == 24

    def test_generic_object_pickled(self):
        n = payload_nbytes({"key": [1, 2, 3]})
        assert n > 8

    def test_dict_of_arrays_counts_data(self):
        small = payload_nbytes({"a": np.zeros(1)})
        big = payload_nbytes({"a": np.zeros(1000)})
        assert big - small > 7000  # array bytes dominate


class TestSendWireBytes:
    def test_payload_sized(self):
        assert Send(0, payload=np.zeros(4)).wire_bytes() == 32

    def test_override(self):
        assert Send(0, payload=np.zeros(4), nbytes=5).wire_bytes() == 5


class TestDefaults:
    def test_compute_defaults(self):
        op = Compute()
        assert op.flops == 0.0 and op.seconds is None

    def test_recv_defaults(self):
        assert Recv(3).tag == 0

    def test_barrier_defaults(self):
        assert Barrier().group == ()
