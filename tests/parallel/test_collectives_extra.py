"""Tests for the extended collectives (recursive doubling, reduce-scatter)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import GENERIC, Simulator
from repro.parallel import collectives as coll


def run(nranks, program):
    return Simulator(nranks, GENERIC).run(program)


class TestRecursiveDoubling:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6, 7, 8, 12, 13])
    def test_sum_everywhere(self, size):
        def program(ctx):
            return (yield from coll.allreduce_recursive_doubling(
                ctx, ctx.rank + 1
            ))

        res = run(size, program)
        assert res.returns == [size * (size + 1) // 2] * size

    def test_array_payloads(self):
        def program(ctx):
            v = np.full(4, float(ctx.rank))
            out = yield from coll.allreduce_recursive_doubling(ctx, v)
            return out.tolist()

        res = run(6, program)
        assert res.returns == [[15.0] * 4] * 6

    def test_custom_op(self):
        def program(ctx):
            return (yield from coll.allreduce_recursive_doubling(
                ctx, ctx.rank, op=max
            ))

        assert run(5, program).returns == [4] * 5

    def test_fewer_rounds_than_reduce_bcast(self):
        """For power-of-two groups: log P rounds vs 2 log P."""

        def rd(ctx):
            yield from coll.allreduce_recursive_doubling(ctx, 1.0)

        def rb(ctx):
            yield from ctx.allreduce(1.0)

        t_rd = run(8, rd).elapsed
        t_rb = run(8, rb).elapsed
        assert t_rd < t_rb

    @given(size=st.integers(1, 16), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_matches_tree_allreduce(self, size, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(size)

        def program(ctx):
            a = yield from coll.allreduce_recursive_doubling(
                ctx, values[ctx.rank]
            )
            b = yield from ctx.allreduce(values[ctx.rank])
            return (a, b)

        res = run(size, program)
        for a, b in res.returns:
            assert a == pytest.approx(b, rel=1e-12)


class TestReduceScatter:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_each_rank_gets_its_chunk(self, size):
        def program(ctx):
            chunks = [float(ctx.rank * 10 + d) for d in range(ctx.size)]
            return (yield from coll.reduce_scatter_ring(ctx, chunks))

        res = run(size, program)
        for d in range(size):
            want = float(sum(r * 10 + d for r in range(size)))
            assert res.returns[d] == want

    def test_array_chunks(self):
        def program(ctx):
            chunks = [np.full(3, float(ctx.rank + d)) for d in range(ctx.size)]
            out = yield from coll.reduce_scatter_ring(ctx, chunks)
            return out.tolist()

        res = run(4, program)
        for d in range(4):
            want = float(sum(r + d for r in range(4)))
            assert res.returns[d] == [want] * 3

    def test_chunk_count_validated(self):
        def program(ctx):
            yield from coll.reduce_scatter_ring(ctx, [1.0])

        with pytest.raises(ValueError):
            run(3, program)

    def test_linear_messages(self):
        """P (P-1) messages total — each rank sends once per round."""

        def program(ctx):
            chunks = [np.zeros(16) for _ in range(ctx.size)]
            yield from coll.reduce_scatter_ring(ctx, chunks)

        res = run(6, program)
        assert res.trace.total_messages() == 6 * 5
