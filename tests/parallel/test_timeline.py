"""Tests for event recording and timeline analysis."""

import numpy as np
import pytest

from repro.parallel import GENERIC, Simulator
from repro.parallel.timeline import (
    Event,
    busy_fraction,
    communication_matrix,
    render_gantt,
    wait_hotspots,
)


def _ring_program(ctx):
    yield from ctx.compute(seconds=0.01 * (ctx.rank + 1))
    yield from ctx.allgather(np.zeros(50))
    yield from ctx.barrier()
    return None


@pytest.fixture(scope="module")
def recorded():
    sim = Simulator(4, GENERIC, record_events=True)
    return sim.run(_ring_program)


class TestRecording:
    def test_default_no_events(self):
        res = Simulator(2, GENERIC).run(_ring_program)
        assert res.trace.events is None

    def test_events_collected(self, recorded):
        kinds = {e.kind for e in recorded.trace.events}
        assert {"compute", "send", "recv", "barrier"} <= kinds

    def test_events_ordered_within_rank(self, recorded):
        for rank in range(4):
            evs = [e for e in recorded.trace.events if e.rank == rank]
            # Events may interleave kinds but never run backwards.
            starts = [e.start for e in sorted(evs, key=lambda e: e.start)]
            assert starts == sorted(starts)

    def test_event_durations_nonnegative(self, recorded):
        assert all(e.duration >= 0 for e in recorded.trace.events)

    def test_compute_events_match_accounting(self, recorded):
        for rank in range(4):
            total = sum(
                e.duration
                for e in recorded.trace.events
                if e.rank == rank and e.kind == "compute"
            )
            assert total == pytest.approx(
                recorded.trace.ranks[rank].compute_time
            )


class TestCommunicationMatrix:
    def test_ring_pattern(self, recorded):
        """Allgather-ring: rank i only ever sends to (i+1) mod P."""
        cm = communication_matrix(recorded.trace)
        for i in range(4):
            for j in range(4):
                if j == (i + 1) % 4:
                    assert cm[i, j] > 0
                else:
                    assert cm[i, j] == 0

    def test_volume_matches_accounting(self, recorded):
        cm = communication_matrix(recorded.trace)
        assert cm.sum() == recorded.trace.total_bytes()

    def test_requires_events(self):
        res = Simulator(2, GENERIC).run(_ring_program)
        with pytest.raises(ValueError):
            communication_matrix(res.trace)


class TestGantt:
    def test_renders_all_ranks(self, recorded):
        text = render_gantt(recorded.trace, recorded.elapsed, width=40)
        for r in range(4):
            assert f"rank {r:4d}" in text

    def test_compute_glyphs_present(self, recorded):
        text = render_gantt(recorded.trace, recorded.elapsed, width=40)
        assert "#" in text

    def test_rank_subset_and_window(self, recorded):
        text = render_gantt(
            recorded.trace, recorded.elapsed, width=30,
            ranks=[1], t0=0.0, t1=recorded.elapsed / 2,
        )
        assert "rank    1" in text and "rank    0" not in text

    def test_inverted_window_rejected(self, recorded):
        with pytest.raises(ValueError):
            render_gantt(recorded.trace, recorded.elapsed, t0=1.0, t1=0.5)

    def test_zero_span_window_renders_idle_rows(self, recorded):
        text = render_gantt(recorded.trace, recorded.elapsed,
                            width=20, t0=1.0, t1=1.0)
        lines = text.splitlines()
        assert len(lines) == 1 + 4
        for line in lines[1:]:
            assert line.endswith("|" + " " * 20 + "|")


def _idle_program(ctx):
    """A rank program that performs no priced operations at all."""
    return ctx.rank
    yield  # pragma: no cover - makes this a generator function


class TestEdgeCases:
    """Empty traces and single-rank runs (satellite task)."""

    @pytest.fixture(scope="class")
    def empty(self):
        return Simulator(3, GENERIC, record_events=True).run(_idle_program)

    @pytest.fixture(scope="class")
    def single(self):
        return Simulator(1, GENERIC, record_events=True).run(_ring_program)

    def test_empty_trace_comm_matrix_is_zero(self, empty):
        cm = communication_matrix(empty.trace)
        assert cm.shape == (3, 3)
        assert np.all(cm == 0)

    def test_empty_trace_gantt_renders(self, empty):
        assert empty.elapsed == 0.0
        text = render_gantt(empty.trace, empty.elapsed, width=16)
        assert text.splitlines()[0].startswith("virtual time")
        for r in range(3):
            assert f"rank {r:4d} |{' ' * 16}|" in text

    def test_empty_trace_summaries(self, empty):
        assert np.all(busy_fraction(empty.trace, empty.elapsed) == 0)
        assert all(w == 0.0 for _, w in wait_hotspots(empty.trace))

    def test_single_rank_comm_matrix(self, single):
        cm = communication_matrix(single.trace)
        assert cm.shape == (1, 1)
        # a 1-rank allgather needs no messages
        assert cm[0, 0] == 0

    def test_single_rank_gantt(self, single):
        text = render_gantt(single.trace, single.elapsed, width=24)
        assert "rank    0" in text
        assert "#" in text  # the compute op still shows


class TestSummaries:
    def test_busy_fraction_bounds(self, recorded):
        frac = busy_fraction(recorded.trace, recorded.elapsed)
        assert np.all(frac >= 0) and np.all(frac <= 1)
        # Rank 3 computed the longest.
        assert frac.argmax() == 3

    def test_wait_hotspots_sorted(self, recorded):
        spots = wait_hotspots(recorded.trace, top=4)
        waits = [w for _, w in spots]
        assert waits == sorted(waits, reverse=True)
        # Rank 0 finished computing first -> waited the most.
        assert spots[0][0] == 0
