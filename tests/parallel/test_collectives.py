"""Tests for collective algorithms against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import GENERIC, Simulator


def run(nranks, program, *args):
    return Simulator(nranks, GENERIC).run(program, *args)


class TestBcast:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 13])
    @pytest.mark.parametrize("root", [0, "last"])
    def test_all_receive(self, size, root):
        root = size - 1 if root == "last" else 0

        def program(ctx):
            obj = {"data": 42} if ctx.rank == root else None
            got = yield from ctx.bcast(obj, root=root)
            return got["data"]

        res = run(size, program)
        assert res.returns == [42] * size

    def test_array_payload(self):
        def program(ctx):
            arr = np.arange(8.0) if ctx.rank == 1 else None
            got = yield from ctx.bcast(arr, root=1)
            return got.sum()

        assert run(4, program).returns == [28.0] * 4

    def test_bad_root(self):
        def program(ctx):
            yield from ctx.bcast(1, root=9)

        with pytest.raises(ValueError):
            run(3, program)


class TestReduceAllreduce:
    @pytest.mark.parametrize("size", [1, 2, 5, 8, 11])
    def test_sum_at_root(self, size):
        def program(ctx):
            return (yield from ctx.reduce(ctx.rank + 1, root=0))

        res = run(size, program)
        assert res.returns[0] == sum(range(1, size + 1))
        assert all(v is None for v in res.returns[1:])

    def test_nonzero_root(self):
        def program(ctx):
            return (yield from ctx.reduce(ctx.rank, root=2))

        res = run(5, program)
        assert res.returns[2] == 10

    def test_custom_op(self):
        def program(ctx):
            return (yield from ctx.allreduce(ctx.rank + 1, op=max))

        assert run(6, program).returns == [6] * 6

    def test_array_elementwise(self):
        def program(ctx):
            v = np.full(3, float(ctx.rank))
            out = yield from ctx.allreduce(v)
            return out.tolist()

        res = run(4, program)
        assert res.returns == [[6.0, 6.0, 6.0]] * 4

    @given(size=st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_allreduce_any_size(self, size):
        def program(ctx):
            return (yield from ctx.allreduce(ctx.rank))

        assert run(size, program).returns == [size * (size - 1) // 2] * size


class TestGatherScatter:
    def test_gather_rank_order(self):
        def program(ctx):
            return (yield from ctx.gather(ctx.rank * 10, root=1))

        res = run(4, program)
        assert res.returns[1] == [0, 10, 20, 30]
        assert res.returns[0] is None

    def test_scatter(self):
        def program(ctx):
            values = [f"v{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
            return (yield from ctx.scatter(values, root=0))

        assert run(3, program).returns == ["v0", "v1", "v2"]

    def test_scatter_wrong_count(self):
        def program(ctx):
            values = [1] if ctx.rank == 0 else None
            yield from ctx.scatter(values, root=0)

        with pytest.raises(ValueError):
            run(3, program)

    @pytest.mark.parametrize("size", [1, 2, 6, 9])
    def test_gather_binomial(self, size):
        from repro.parallel import collectives as coll

        def program(ctx):
            return (yield from coll.gather_binomial(ctx, ctx.rank + 100, root=0))

        res = run(size, program)
        assert res.returns[0] == [100 + r for r in range(size)]


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_allgather_ring(self, size):
        def program(ctx):
            return (yield from ctx.allgather(ctx.rank * 2))

        res = run(size, program)
        for r in range(size):
            assert res.returns[r] == [2 * i for i in range(size)]

    def test_ring_message_count(self):
        """Ring allgather sends P(P-1) messages total."""

        def program(ctx):
            yield from ctx.allgather(np.zeros(4))

        res = run(6, program)
        assert res.trace.total_messages() == 6 * 5

    @pytest.mark.parametrize("size", [1, 2, 4, 7])
    def test_alltoall_pairwise(self, size):
        def program(ctx):
            chunks = [ctx.rank * 100 + d for d in range(size)]
            return (yield from ctx.alltoall(chunks))

        res = run(size, program)
        for r in range(size):
            assert res.returns[r] == [s * 100 + r for s in range(size)]

    def test_alltoall_wrong_chunks(self):
        def program(ctx):
            yield from ctx.alltoall([1])

        with pytest.raises(ValueError):
            run(3, program)


class TestGroupComm:
    def test_row_groups_independent(self):
        def program(ctx):
            row = ctx.group([r for r in range(ctx.size) if r // 3 == ctx.rank // 3])
            return (yield from row.allreduce(ctx.rank))

        res = run(6, program)
        assert res.returns == [3, 3, 3, 12, 12, 12]

    def test_group_requires_membership(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.group([1, 2])
            return None
            yield  # pragma: no cover - make it a generator

        with pytest.raises(ValueError):
            run(3, program)

    def test_group_rejects_duplicates(self):
        def program(ctx):
            ctx.group([0, 0])
            return None
            yield  # pragma: no cover

        with pytest.raises(ValueError):
            run(1, program)

    def test_group_local_ranks(self):
        def program(ctx):
            g = ctx.group([2, 0, 1])  # order defines local positions
            yield from ctx.compute(seconds=0.0)
            return g.rank

        res = run(3, program)
        assert res.returns == [1, 2, 0]
