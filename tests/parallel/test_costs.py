"""Tests for the analytic communication/computation cost formulas."""

import pytest

from repro.parallel import GENERIC, Simulator
from repro.parallel.costs import (
    convolution_flops,
    fft_filter_flops,
    halo_exchange_estimate,
    pairwise_alltoall_estimate,
    ring_allgather_estimate,
    tree_reduce_bcast_estimate,
)


class TestKernelFlops:
    def test_convolution_quadratic(self):
        assert convolution_flops(100, 50) == 2 * 100 * 50

    def test_fft_n_log_n(self):
        f1 = fft_filter_flops(128)
        f2 = fft_filter_flops(256)
        # doubling N slightly more than doubles the cost
        assert 2.0 < f2 / f1 < 2.4

    def test_fft_trivial_line(self):
        assert fft_filter_flops(1) == 0.0

    def test_convolution_beats_fft_asymptotically(self):
        n = 1024
        assert convolution_flops(n, n // 2) > fft_filter_flops(n)


class TestCommEstimates:
    def test_ring_matches_simulation(self):
        """The analytic ring estimate matches emergent simulator counts."""
        nranks, nbytes = 6, 256

        def program(ctx):
            import numpy as np

            yield from ctx.allgather(np.zeros(nbytes // 8))

        res = Simulator(nranks, GENERIC).run(program)
        est = ring_allgather_estimate(nbytes, nranks, GENERIC)
        assert res.trace.total_messages() == est.messages
        assert res.trace.total_bytes() == est.volume_bytes

    def test_tree_message_count(self):
        est = tree_reduce_bcast_estimate(100, 8, GENERIC)
        assert est.messages == 2 * 7

    def test_tree_single_rank_free(self):
        est = tree_reduce_bcast_estimate(100, 1, GENERIC)
        assert est.time == 0.0 and est.messages == 0

    def test_pairwise_alltoall_counts(self):
        est = pairwise_alltoall_estimate(1000, 5, GENERIC)
        assert est.messages == 5 * 4

    def test_halo_four_messages(self):
        est = halo_exchange_estimate(100, 200, GENERIC)
        assert est.messages == 4
        assert est.volume_bytes == 600

    def test_ring_time_grows_with_ranks(self):
        t4 = ring_allgather_estimate(100, 4, GENERIC).time
        t8 = ring_allgather_estimate(100, 8, GENERIC).time
        assert t8 > t4
