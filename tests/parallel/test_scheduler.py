"""Tests for the discrete-event SPMD scheduler."""

import numpy as np
import pytest

from repro.parallel import (
    Barrier,
    Compute,
    DeadlockError,
    GENERIC,
    Recv,
    Send,
    Simulator,
)


class TestCompute:
    def test_explicit_seconds(self):
        def program(ctx):
            yield Compute(seconds=2.5)
            return ctx.rank

        res = Simulator(3, GENERIC).run(program)
        assert res.elapsed == pytest.approx(2.5)
        assert res.clocks == [pytest.approx(2.5)] * 3

    def test_flops_priced_by_machine(self):
        def program(ctx):
            yield Compute(flops=GENERIC.flop_rate)

        res = Simulator(1, GENERIC).run(program)
        assert res.elapsed == pytest.approx(1.0)

    def test_negative_seconds_rejected(self):
        def program(ctx):
            yield Compute(seconds=-1.0)

        with pytest.raises(ValueError):
            Simulator(1, GENERIC).run(program)

    def test_compute_time_accounted(self):
        def program(ctx):
            yield Compute(seconds=1.0)
            yield Compute(seconds=0.5)

        res = Simulator(2, GENERIC).run(program)
        assert res.trace.ranks[0].compute_time == pytest.approx(1.5)


class TestSendRecv:
    def test_payload_delivery(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, payload=np.arange(5.0))
                return None
            got = yield Recv(0)
            return got.sum()

        res = Simulator(2, GENERIC).run(program)
        assert res.returns[1] == pytest.approx(10.0)

    def test_recv_waits_for_arrival(self):
        nbytes = 800

        def program(ctx):
            if ctx.rank == 0:
                yield Compute(seconds=1.0)
                yield Send(1, payload=np.zeros(100))
            else:
                got = yield Recv(0)
                return got

        res = Simulator(2, GENERIC).run(program)
        expected = 1.0 + GENERIC.message_time(nbytes) + GENERIC.recv_busy_time(
            nbytes
        )
        assert res.clocks[1] == pytest.approx(expected)
        assert res.trace.ranks[1].recv_wait_time > 0

    def test_early_send_no_wait(self):
        """If the message already arrived, the receiver pays no wait."""

        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, payload=np.zeros(10))
            else:
                yield Compute(seconds=5.0)
                got = yield Recv(0)
                return got

        res = Simulator(2, GENERIC).run(program)
        assert res.trace.ranks[1].recv_wait_time == pytest.approx(0.0)

    def test_fifo_ordering_same_tag(self):
        """Messages between a pair with equal tags are non-overtaking."""

        def program(ctx):
            if ctx.rank == 0:
                for k in range(5):
                    yield Send(1, payload=float(k), tag=7)
            else:
                got = []
                for _ in range(5):
                    v = yield Recv(0, tag=7)
                    got.append(v)
                return got

        res = Simulator(2, GENERIC).run(program)
        assert res.returns[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_tags_segregate(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, payload="a", tag=1)
                yield Send(1, payload="b", tag=2)
            else:
                b = yield Recv(0, tag=2)
                a = yield Recv(0, tag=1)
                return (a, b)

        res = Simulator(2, GENERIC).run(program)
        assert res.returns[1] == ("a", "b")

    def test_message_accounting(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, payload=np.zeros(100))  # 800 bytes
            else:
                yield Recv(0)

        res = Simulator(2, GENERIC).run(program)
        assert res.trace.total_messages() == 1
        assert res.trace.total_bytes() == 800
        assert res.trace.ranks[1].bytes_received == 800

    def test_explicit_nbytes_override(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, payload=None, nbytes=12345)
            else:
                yield Recv(0)

        res = Simulator(2, GENERIC).run(program)
        assert res.trace.total_bytes() == 12345


class TestDeadlock:
    def test_mutual_recv_deadlocks(self):
        def program(ctx):
            other = 1 - ctx.rank
            yield Recv(other)

        with pytest.raises(DeadlockError, match="deadlock"):
            Simulator(2, GENERIC).run(program)

    def test_recv_from_silent_rank(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Recv(1)
            # rank 1 exits immediately

        with pytest.raises(DeadlockError):
            Simulator(2, GENERIC).run(program)

    def test_wait_graph_names_peer_tag_and_time(self):
        def program(ctx):
            yield Compute(seconds=0.5 * (1 + ctx.rank))
            yield Recv(1 - ctx.rank, tag=0xBEEF)

        with pytest.raises(DeadlockError) as err:
            Simulator(2, GENERIC).run(program)
        graph = err.value.wait_graph
        assert graph[0] == {
            "kind": "recv", "on": [1], "tag": 0xBEEF, "since": 0.5,
        }
        assert graph[1]["on"] == [0] and graph[1]["since"] == 1.0
        msg = str(err.value)
        assert "rank 0 waiting on rank 1" in msg
        assert "recv(tag=0x0000beef)" in msg
        assert "since t=0.5 s" in msg

    def test_wait_graph_barrier_lists_missing_ranks(self):
        def program(ctx):
            if ctx.rank < 2:
                yield Barrier(group=(0, 1, 2))
            else:
                yield Recv(0)  # never arrives at the barrier

        with pytest.raises(DeadlockError) as err:
            Simulator(3, GENERIC).run(program)
        graph = err.value.wait_graph
        assert graph[0]["kind"] == "barrier" and graph[0]["on"] == [2]
        assert graph[0]["group"] == [0, 1, 2]
        assert graph[2]["kind"] == "recv" and graph[2]["on"] == [0]
        assert "waiting on rank(s) [2]" in str(err.value)

    def test_wait_graph_marks_hung_rank(self):
        from repro.faults import FaultPlan, RankFailure

        def program(ctx):
            yield Compute(seconds=1.0)
            if ctx.rank == 0:
                yield Recv(1)
            else:
                yield Send(0, payload=1.0)

        plan = FaultPlan(
            seed=3, failures=(RankFailure(rank=1, at=0.5, mode="hang"),)
        )
        with pytest.raises(DeadlockError) as err:
            Simulator(2, GENERIC, faults=plan).run(program)
        graph = err.value.wait_graph
        assert graph[1]["kind"] == "hang" and graph[1]["on"] == []
        assert graph[0]["kind"] == "recv" and graph[0]["on"] == [1]
        assert "rank 1 failed (hang)" in str(err.value)


class TestBarrier:
    def test_barrier_aligns_clocks(self):
        def program(ctx):
            yield Compute(seconds=float(ctx.rank))
            yield Barrier(group=tuple(range(ctx.size)))
            return ctx.clock

        res = Simulator(4, GENERIC).run(program)
        assert len(set(round(c, 12) for c in res.returns)) == 1
        assert res.returns[0] >= 3.0

    def test_subgroup_barrier(self):
        def program(ctx):
            if ctx.rank < 2:
                yield Compute(seconds=1.0 + ctx.rank)
                yield Barrier(group=(0, 1))
            return ctx.clock

        res = Simulator(3, GENERIC).run(program)
        assert res.clocks[0] == pytest.approx(res.clocks[1])
        assert res.clocks[2] == 0.0

    def test_barrier_wrong_membership(self):
        def program(ctx):
            yield Barrier(group=(1, 2))

        with pytest.raises(ValueError):
            Simulator(3, GENERIC).run(program)


class TestDeterminism:
    def test_identical_runs(self):
        def program(ctx):
            total = 0.0
            for step in range(3):
                vals = yield from ctx.allgather(float(ctx.rank * step))
                total += sum(vals)
                yield Compute(seconds=0.01 * ctx.rank)
            return total

        r1 = Simulator(5, GENERIC).run(program)
        r2 = Simulator(5, GENERIC).run(program)
        assert r1.clocks == r2.clocks
        assert r1.returns == r2.returns
        assert r1.trace.total_messages() == r2.trace.total_messages()


class TestRegions:
    def test_region_elapsed_includes_waits(self):
        def program(ctx):
            with ctx.region("phase"):
                if ctx.rank == 0:
                    yield Compute(seconds=2.0)
                    yield Send(1, payload=1.0)
                else:
                    got = yield Recv(0)
            return None

        res = Simulator(2, GENERIC).run(program)
        # Rank 1 spent the whole wait inside the region.
        assert res.trace.phase_elapsed["phase"][1] >= 2.0

    def test_nested_regions(self):
        def program(ctx):
            with ctx.region("outer"):
                yield Compute(seconds=1.0)
                with ctx.region("inner"):
                    yield Compute(seconds=0.5)

        res = Simulator(1, GENERIC).run(program)
        assert res.trace.phase_max("outer") == pytest.approx(1.5)
        assert res.trace.phase_max("inner") == pytest.approx(0.5)

    def test_mismatched_region_raises(self):
        from repro.parallel.trace import Trace

        tr = Trace(1)
        tr.open_region(0, "a", 0.0)
        with pytest.raises(RuntimeError):
            tr.close_region(0, "b", 1.0)

    def test_phase_imbalance_metric(self):
        def program(ctx):
            with ctx.region("p"):
                yield Compute(seconds=1.0 + ctx.rank)

        res = Simulator(2, GENERIC).run(program)
        # loads 1 and 2: (max - mean) / mean = 0.5 / 1.5
        assert res.trace.phase_imbalance("p") == pytest.approx(1 / 3)
