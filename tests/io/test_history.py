"""Tests for history files."""

import numpy as np
import pytest

from repro.dynamics.state import ModelState
from repro.grid.sphere import SphericalGrid
from repro.io.history import HistoryMetadata, HistoryReader, HistoryWriter
from repro.model.agcm import AGCM
from repro.model.config import make_config


@pytest.fixture
def meta():
    return HistoryMetadata(nlat=8, nlon=12, nlayers=2, dt=600.0,
                           description="test run")


class TestMetadata:
    def test_json_roundtrip(self, meta):
        back = HistoryMetadata.from_json(meta.to_json())
        assert back == meta


class TestWriterReader:
    def test_roundtrip(self, tmp_path, meta):
        grid = SphericalGrid(8, 12)
        writer = HistoryWriter(tmp_path / "hist.npz", meta)
        states = []
        for step in range(3):
            s = ModelState.baroclinic_test(grid, 2, seed=step)
            s.time = step * 600.0
            writer.append(s)
            states.append(s)
        assert len(writer) == 3
        path = writer.save()

        reader = HistoryReader(path)
        assert len(reader) == 3
        assert reader.metadata == meta
        for i, want in enumerate(states):
            got = reader.snapshot(i)
            assert got.time == want.time
            for name, arr in want.fields().items():
                np.testing.assert_array_equal(getattr(got, name), arr)

    def test_negative_index(self, tmp_path, meta):
        grid = SphericalGrid(8, 12)
        writer = HistoryWriter(tmp_path / "h.npz", meta)
        for step in range(2):
            s = ModelState.baroclinic_test(grid, 2, seed=step)
            s.time = float(step)
            writer.append(s)
        reader = HistoryReader(writer.save())
        assert reader.snapshot(-1).time == reader.last().time == 1.0

    def test_out_of_range(self, tmp_path, meta):
        grid = SphericalGrid(8, 12)
        writer = HistoryWriter(tmp_path / "h.npz", meta)
        writer.append(ModelState.baroclinic_test(grid, 2))
        reader = HistoryReader(writer.save())
        with pytest.raises(IndexError):
            reader.snapshot(5)

    def test_shape_mismatch_rejected(self, tmp_path, meta):
        writer = HistoryWriter(tmp_path / "h.npz", meta)
        wrong = ModelState.zeros(9, 12, 2)
        with pytest.raises(ValueError):
            writer.append(wrong)

    def test_restart_from_snapshot(self, tmp_path):
        """A model restarted from a saved snapshot continues finitely and
        from the recorded time."""
        cfg = make_config("tiny")
        model = AGCM(cfg)
        model.initialize()
        model.run(4)
        meta = HistoryMetadata(cfg.nlat, cfg.nlon, cfg.nlayers, model.dt)
        writer = HistoryWriter(tmp_path / "restart.npz", meta)
        writer.append(model.state)
        reader = HistoryReader(writer.save())

        restarted = AGCM(cfg)
        restarted.initialize(reader.last())
        assert restarted.state.time == pytest.approx(4 * model.dt)
        restarted.run(3)
        assert restarted.is_stable()
