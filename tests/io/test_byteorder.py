"""Tests for the byte-order reversal routine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.io.byteorder import (
    BIG,
    LITTLE,
    convert_record,
    encode_record,
    native_order,
    reinterpret_swapped,
    swap_bytes,
)


class TestSwap:
    def test_swap_preserves_values(self):
        a = np.array([1.5, -2.25, 1e300])
        swapped = swap_bytes(a)
        np.testing.assert_array_equal(swapped, a)
        assert swapped.dtype.byteorder != a.dtype.byteorder or a.dtype.byteorder == "|"

    def test_double_swap_identity(self):
        a = np.arange(10, dtype=np.float32)
        np.testing.assert_array_equal(swap_bytes(swap_bytes(a)), a)

    def test_reinterpret_changes_values(self):
        a = np.array([1.0])  # asymmetric byte pattern
        assert reinterpret_swapped(a)[0] != a[0]

    def test_reinterpret_same_bytes(self):
        a = np.array([3.7, -1.2])
        assert reinterpret_swapped(a).tobytes() == a.tobytes()


class TestRecords:
    @pytest.mark.parametrize("order", [BIG, LITTLE])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int32])
    def test_roundtrip(self, rng, order, dtype):
        if np.dtype(dtype).kind == "f":
            data = rng.standard_normal(20).astype(dtype)
        else:
            data = rng.integers(-1000, 1000, 20).astype(dtype)
        raw = encode_record(data, target_order=order)
        back = convert_record(raw, dtype, source_order=order)
        np.testing.assert_array_equal(back, data)
        assert back.dtype.byteorder in ("=", "|", native_order())

    def test_paragon_scenario(self):
        """Big-endian workstation history read on a little-endian node."""
        history = np.linspace(900.0, 1100.0, 12)
        raw = encode_record(history, target_order=BIG)
        decoded = convert_record(raw, np.float64, source_order=BIG)
        np.testing.assert_array_equal(decoded, history)
        # Without conversion the values are garbage.
        garbage = np.frombuffer(raw, dtype=np.float64)
        if native_order() == LITTLE:
            assert not np.allclose(garbage, history)

    def test_count_limits_record(self):
        raw = encode_record(np.arange(10.0), target_order=BIG)
        head = convert_record(raw, np.float64, count=3, source_order=BIG)
        np.testing.assert_array_equal(head, [0.0, 1.0, 2.0])

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            convert_record(b"", np.float64, source_order="?")
        with pytest.raises(ValueError):
            encode_record(np.zeros(1), target_order="x")

    @given(
        data=arrays(np.float64, st.integers(0, 50),
                    elements=st.floats(allow_nan=False, width=64)),
        order=st.sampled_from([BIG, LITTLE]),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data, order):
        raw = encode_record(data, target_order=order)
        np.testing.assert_array_equal(
            convert_record(raw, np.float64, source_order=order), data
        )
