"""Tests for the physics driver and workload estimation."""

import numpy as np
import pytest

from repro.dynamics.state import PT_REFERENCE
from repro.physics.driver import (
    ColumnSet,
    PhysicsParams,
    block_physics,
    run_physics,
)
from repro.physics.workload import (
    analytic_rank_load,
    column_flops,
    mean_column_flops,
)


@pytest.fixture
def cols(rng):
    ncol, k = 30, 5
    return ColumnSet(
        pt=PT_REFERENCE + rng.standard_normal((ncol, k)),
        q=0.01 * rng.random((ncol, k)),
        lat_rad=rng.uniform(-1.4, 1.4, ncol),
        lon_rad=rng.uniform(0, 6.28, ncol),
    )


class TestColumnSet:
    def test_from_block_roundtrip(self, rng):
        nlat, nlon, k = 4, 6, 3
        pt = rng.standard_normal((nlat, nlon, k))
        q = rng.standard_normal((nlat, nlon, k))
        lat = rng.uniform(-1, 1, nlat)
        lon = rng.uniform(0, 6, nlon)
        cs = ColumnSet.from_block(pt, q, lat, lon)
        assert cs.ncol == nlat * nlon
        np.testing.assert_array_equal(
            cs.pt.reshape(nlat, nlon, k), pt
        )
        # Column (j, i) carries lat[j], lon[i] (lat-major flattening).
        assert cs.lat_rad[nlon + 2] == lat[1]
        assert cs.lon_rad[nlon + 2] == lon[2]

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            ColumnSet(
                pt=np.zeros((3, 2)),
                q=np.zeros((4, 2)),
                lat_rad=np.zeros(3),
                lon_rad=np.zeros(3),
            )

    def test_subset(self, cols):
        sub = cols.subset(np.array([0, 5, 7]))
        assert sub.ncol == 3
        np.testing.assert_array_equal(sub.pt[1], cols.pt[5])


class TestDriver:
    def test_deterministic(self, cols):
        r1 = run_physics(cols, 0.3, 12)
        r2 = run_physics(cols, 0.3, 12)
        np.testing.assert_array_equal(r1.tend_pt, r2.tend_pt)
        np.testing.assert_array_equal(r1.flops, r2.flops)

    def test_flops_match_workload_estimator(self, cols):
        """The driver's accounting and the LB estimator must agree —
        otherwise the balancer would chase the wrong quantity."""
        params = PhysicsParams()
        result = run_physics(cols, 0.4, 9, params)
        estimate = column_flops(cols, 0.4, 9, params)
        np.testing.assert_allclose(result.flops, estimate)

    def test_day_night_cost_difference(self, rng):
        k = 5
        base = dict(
            pt=np.full((2, k), PT_REFERENCE),
            q=np.full((2, k), 1e-3),
            lat_rad=np.zeros(2),
            lon_rad=np.array([0.0, np.pi]),  # noon vs midnight at t=0.5
        )
        cs = ColumnSet(**base)
        result = run_physics(cs, 0.5, 0)
        assert result.flops[0] > result.flops[1]

    def test_block_interface_consistent(self, rng):
        nlat, nlon, k = 5, 8, 4
        pt = PT_REFERENCE + rng.standard_normal((nlat, nlon, k))
        q = 0.01 * rng.random((nlat, nlon, k))
        lat = rng.uniform(-1, 1, nlat)
        lon = rng.uniform(0, 6, nlon)
        tp, tq, fl = block_physics(pt, q, lat, lon, 0.3, 2)
        cs = ColumnSet.from_block(pt, q, lat, lon)
        ref = run_physics(cs, 0.3, 2)
        np.testing.assert_array_equal(tp.reshape(-1, k), ref.tend_pt)
        np.testing.assert_array_equal(fl.ravel(), ref.flops)

    def test_total_flops(self, cols):
        result = run_physics(cols, 0.2, 1)
        assert result.total_flops == pytest.approx(result.flops.sum())

    def test_tendencies_finite(self, cols):
        result = run_physics(cols, 0.7, 30)
        assert np.isfinite(result.tend_pt).all()
        assert np.isfinite(result.tend_q).all()


class TestAnalyticWorkload:
    def test_mean_between_extremes(self):
        k = 9
        night_stable = analytic_rank_load(100, k, 0.0, 0.0)
        day_convecting = analytic_rank_load(100, k, 1.0, 1.0)
        mean = 100 * mean_column_flops(k)
        assert night_stable < mean < day_convecting

    def test_scales_with_columns(self):
        assert analytic_rank_load(200, 9, 0.5, 0.2) == pytest.approx(
            2 * analytic_rank_load(100, 9, 0.5, 0.2)
        )

    def test_more_layers_cost_more(self):
        assert mean_column_flops(15) > mean_column_flops(9)
