"""Tests for radiation and boundary-layer parameterisations."""

import numpy as np
import pytest

from repro.dynamics.state import PT_REFERENCE
from repro.physics.pbl import PBL_FLOPS, SURFACE_PT_OFFSET, surface_fluxes
from repro.physics.radiation import (
    LW_BASE,
    LW_CLOUD_PER_LAYER,
    LW_PER_LAYER,
    SW_BASE,
    SW_PER_LAYER,
    longwave_heating,
    shortwave_heating,
)


@pytest.fixture
def columns(rng):
    ncol, k = 12, 6
    pt = PT_REFERENCE + rng.standard_normal((ncol, k))
    q = 0.01 * rng.random((ncol, k))
    cf = rng.random((ncol, k))
    return pt, q, cf


class TestLongwave:
    def test_shapes_and_finiteness(self, columns):
        pt, _, cf = columns
        heating, flops = longwave_heating(pt, cf)
        assert heating.shape == pt.shape
        assert flops.shape == (pt.shape[0],)
        assert np.isfinite(heating).all()

    def test_cost_model(self, columns):
        pt, _, cf = columns
        _, flops = longwave_heating(pt, cf)
        k = pt.shape[1]
        cloudy = (cf > 0.3).sum(axis=1)
        expected = LW_BASE + LW_PER_LAYER * k + LW_CLOUD_PER_LAYER * cloudy
        np.testing.assert_allclose(flops, expected)

    def test_cloudier_columns_cost_more(self, columns):
        pt, _, _ = columns
        clear = np.zeros_like(pt)
        cloudy = np.ones_like(pt)
        _, f_clear = longwave_heating(pt, clear)
        _, f_cloudy = longwave_heating(pt, cloudy)
        assert np.all(f_cloudy > f_clear)

    def test_hot_layer_cools(self):
        """A layer much warmer than its surroundings loses energy."""
        k = 5
        pt = np.full((1, k), PT_REFERENCE)
        pt[0, 2] += 30.0
        cf = np.zeros((1, k))
        heating, _ = longwave_heating(pt, cf)
        assert heating[0, 2] < 0


class TestShortwave:
    def test_night_columns_free_and_unheated(self, columns):
        _, q, _ = columns
        mu = np.zeros(q.shape[0])
        heating, flops = shortwave_heating(mu, q)
        np.testing.assert_allclose(heating, 0.0)
        np.testing.assert_allclose(flops, 0.0)

    def test_day_columns_heated_and_charged(self, columns):
        _, q, _ = columns
        mu = np.full(q.shape[0], 0.8)
        heating, flops = shortwave_heating(mu, q)
        assert np.all(heating.sum(axis=1) > 0)
        np.testing.assert_allclose(flops, SW_BASE + SW_PER_LAYER * q.shape[1])

    def test_mixed_day_night(self, columns):
        _, q, _ = columns
        mu = np.zeros(q.shape[0])
        mu[::2] = 0.5
        heating, flops = shortwave_heating(mu, q)
        assert np.all(flops[::2] > 0)
        assert np.all(flops[1::2] == 0)
        assert np.all(heating[1::2] == 0)

    def test_oblique_sun_heats_less(self, columns):
        _, q, _ = columns
        h_high, _ = shortwave_heating(np.full(q.shape[0], 1.0), q)
        h_low, _ = shortwave_heating(np.full(q.shape[0], 0.1), q)
        assert h_high.sum() > h_low.sum()


class TestPBL:
    def test_only_lowest_layer_touched(self, columns):
        pt, q, _ = columns
        mu = np.zeros(pt.shape[0])
        dpt, dq, flops = surface_fluxes(pt, q, mu)
        np.testing.assert_allclose(dpt[:, 1:], 0.0)
        np.testing.assert_allclose(dq[:, 1:], 0.0)
        np.testing.assert_allclose(flops, PBL_FLOPS)

    def test_flux_toward_equilibrium(self):
        pt = np.full((1, 3), PT_REFERENCE - 10.0)  # cold air over warm surface
        q = np.full((1, 3), 1e-4)
        dpt, dq, _ = surface_fluxes(pt, q, np.zeros(1))
        assert dpt[0, 0] > 0  # heating
        assert dq[0, 0] > 0   # evaporation

    def test_daytime_surface_warmer(self):
        pt = np.full((2, 3), PT_REFERENCE + SURFACE_PT_OFFSET)
        q = np.full((2, 3), 1e-2)
        dpt_night, _, _ = surface_fluxes(pt[:1], q[:1], np.zeros(1))
        dpt_day, _, _ = surface_fluxes(pt[1:], q[1:], np.ones(1))
        assert dpt_day[0, 0] > dpt_night[0, 0]
