"""Tests for cloud diagnosis and convective adjustment."""

import numpy as np
import pytest

from repro.dynamics.state import PT_REFERENCE
from repro.physics.clouds import (
    cloud_fraction,
    cloudy_layer_count,
    pseudo_noise,
    saturation_q,
)
from repro.physics.convection import (
    CRITICAL_LAPSE,
    MAX_ITERATIONS,
    convective_adjustment,
    instability_iterations,
)


class TestClouds:
    def test_saturation_monotone_in_pt(self):
        pt = np.array([PT_REFERENCE - 5, PT_REFERENCE, PT_REFERENCE + 5])
        qs = saturation_q(pt)
        assert qs[0] < qs[1] < qs[2]

    def test_cloud_fraction_bounded(self, rng):
        pt = PT_REFERENCE + rng.standard_normal((20, 5))
        q = 0.02 * rng.random((20, 5))
        lat = rng.uniform(-1.5, 1.5, 20)
        lon = rng.uniform(0, 6.28, 20)
        cf = cloud_fraction(pt, q, lat, lon, step=3)
        assert np.all(cf >= 0) and np.all(cf <= 1)

    def test_deterministic(self, rng):
        pt = PT_REFERENCE + rng.standard_normal((10, 4))
        q = 0.01 * rng.random((10, 4))
        lat = rng.uniform(-1, 1, 10)
        lon = rng.uniform(0, 6, 10)
        a = cloud_fraction(pt, q, lat, lon, step=5)
        b = cloud_fraction(pt, q, lat, lon, step=5)
        np.testing.assert_array_equal(a, b)

    def test_noise_varies_with_step(self, rng):
        lat = rng.uniform(-1, 1, 10)
        lon = rng.uniform(0, 6, 10)
        assert not np.allclose(pseudo_noise(lat, lon, 1), pseudo_noise(lat, lon, 2))

    def test_noise_bounded(self, rng):
        n = pseudo_noise(rng.uniform(-1.5, 1.5, 100), rng.uniform(0, 6.3, 100), 7)
        assert np.all(np.abs(n) <= 1.0)

    def test_humid_columns_cloudier(self):
        pt = np.full((2, 4), PT_REFERENCE)
        q_dry = np.full((1, 4), 1e-4)
        q_wet = np.full((1, 4), 2e-2)
        lat = np.zeros(1)
        lon = np.zeros(1)
        cf_dry = cloud_fraction(pt[:1], q_dry, lat, lon, 0, noise_amp=0.0)
        cf_wet = cloud_fraction(pt[:1], q_wet, lat, lon, 0, noise_amp=0.0)
        assert cf_wet.sum() > cf_dry.sum()

    def test_cloudy_layer_count(self):
        cf = np.array([[0.0, 0.5, 0.9], [0.1, 0.2, 0.1]])
        np.testing.assert_array_equal(cloudy_layer_count(cf), [2, 0])


class TestConvection:
    def test_stable_column_no_iterations(self):
        pt = np.linspace(PT_REFERENCE, PT_REFERENCE + 10, 6)[None, :]
        assert instability_iterations(pt)[0] == 0

    def test_unstable_column_iterates(self):
        pt = np.linspace(PT_REFERENCE, PT_REFERENCE - 10, 6)[None, :]
        assert instability_iterations(pt)[0] > 0

    def test_iterations_capped(self):
        pt = np.linspace(PT_REFERENCE, PT_REFERENCE - 100, 12)[None, :]
        assert instability_iterations(pt)[0] == MAX_ITERATIONS

    def test_stable_column_unchanged(self):
        pt = np.linspace(PT_REFERENCE, PT_REFERENCE + 5, 5)[None, :]
        q = np.full_like(pt, 1e-3)
        dpt, dq, flops = convective_adjustment(pt, q)
        np.testing.assert_allclose(dpt, 0.0)
        np.testing.assert_allclose(dq, 0.0)

    def test_adjustment_reduces_instability(self):
        pt = np.array([[PT_REFERENCE + 5, PT_REFERENCE, PT_REFERENCE - 5]])
        q = np.full_like(pt, 1e-3)
        dpt, _, _ = convective_adjustment(pt, q)
        after = pt + dpt
        before_excess = np.maximum(pt[:, :-1] - pt[:, 1:] - CRITICAL_LAPSE, 0).sum()
        after_excess = np.maximum(
            after[:, :-1] - after[:, 1:] - CRITICAL_LAPSE, 0
        ).sum()
        assert after_excess < before_excess

    def test_mass_conserved(self):
        """Adjustment mixes pt between layers without creating mass."""
        pt = np.array([[PT_REFERENCE + 8, PT_REFERENCE, PT_REFERENCE - 8]])
        q = np.full_like(pt, 1e-3)
        dpt, _, _ = convective_adjustment(pt, q)
        assert dpt.sum() == pytest.approx(0.0, abs=1e-10)

    def test_cost_grows_with_instability(self):
        stable = np.linspace(PT_REFERENCE, PT_REFERENCE + 5, 8)[None, :]
        unstable = np.linspace(PT_REFERENCE, PT_REFERENCE - 50, 8)[None, :]
        q = np.full_like(stable, 1e-3)
        _, _, f_stable = convective_adjustment(stable, q)
        _, _, f_unstable = convective_adjustment(unstable, q)
        assert f_unstable[0] > f_stable[0]

    def test_moistening_only_where_adjusted(self):
        pt = np.vstack([
            np.linspace(PT_REFERENCE, PT_REFERENCE + 5, 6),   # stable
            np.linspace(PT_REFERENCE, PT_REFERENCE - 20, 6),  # unstable
        ])
        q = np.full_like(pt, 1e-3)
        _, dq, _ = convective_adjustment(pt, q)
        assert dq[0].sum() == 0.0
        assert dq[1].sum() > 0.0
