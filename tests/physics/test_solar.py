"""Tests for solar geometry."""

import math

import numpy as np
import pytest

from repro.physics.solar import (
    cos_zenith,
    daylight_fraction,
    daylight_mask,
    declination,
    hour_angle,
)


class TestDeclination:
    def test_bounded_by_obliquity(self):
        days = np.arange(0, 360, 10)
        decls = [declination(d) for d in days]
        assert max(abs(d) for d in decls) <= math.radians(23.45) + 1e-12

    def test_solstice_sign(self):
        assert declination(171) > 0  # boreal summer
        assert declination(351) < 0


class TestZenith:
    def test_half_globe_daylight_at_equinox(self):
        lat = np.linspace(-math.pi / 2, math.pi / 2, 50)
        lon = np.linspace(0, 2 * math.pi, 72, endpoint=False)
        lat2, lon2 = [a.ravel() for a in np.meshgrid(lat, lon)]
        frac = daylight_fraction(lat2, lon2, time_frac=0.3)
        assert frac == pytest.approx(0.5, abs=0.03)

    def test_noon_at_antisolar_longitude(self):
        """At time_frac=0.5 the sun is overhead at longitude 0."""
        mu = cos_zenith(np.array([0.0]), np.array([0.0]), 0.5)
        assert mu[0] == pytest.approx(1.0)

    def test_midnight_dark(self):
        mu = cos_zenith(np.array([0.0]), np.array([0.0]), 0.0)
        assert mu[0] == 0.0

    def test_terminator_moves_west(self):
        """The daylight pattern shifts with time — the moving physics load."""
        lon = np.linspace(0, 2 * math.pi, 36, endpoint=False)
        lat = np.zeros(36)
        m1 = daylight_mask(lat, lon, 0.25)
        m2 = daylight_mask(lat, lon, 0.35)
        assert not np.array_equal(m1, m2)

    def test_polar_day_with_declination(self):
        """High-latitude summer: daylight all around the circle."""
        lon = np.linspace(0, 2 * math.pi, 24, endpoint=False)
        lat = np.full(24, math.radians(85.0))
        mask = daylight_mask(lat, lon, 0.0, decl=math.radians(23.0))
        assert mask.all()

    def test_never_negative(self):
        lat = np.linspace(-1.5, 1.5, 20)
        mu = cos_zenith(lat, np.zeros(20), 0.1)
        assert np.all(mu >= 0)

    def test_hour_angle_shape(self):
        h = hour_angle(np.zeros(5), 0.25)
        assert h.shape == (5,)

    def test_empty_daylight_fraction(self):
        assert daylight_fraction(np.array([]), np.array([]), 0.3) == 0.0
