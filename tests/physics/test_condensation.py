"""Tests for large-scale condensation and precipitation."""

import numpy as np
import pytest

from repro.dynamics.state import PT_REFERENCE
from repro.physics.clouds import saturation_q
from repro.physics.condensation import (
    COND_PER_WET_LAYER,
    COND_TRIGGER,
    LATENT_FACTOR,
    RAINOUT_RATE,
    large_scale_condensation,
    supersaturated_layers,
)


@pytest.fixture
def dry_column():
    pt = np.full((1, 5), PT_REFERENCE)
    q = 0.5 * saturation_q(pt)
    return pt, q


@pytest.fixture
def wet_column():
    pt = np.full((1, 5), PT_REFERENCE)
    q = 0.5 * saturation_q(pt)
    q[0, 3] = 2.0 * saturation_q(pt)[0, 3]  # one supersaturated layer
    return pt, q


class TestTriggering:
    def test_dry_column_untouched(self, dry_column):
        pt, q = dry_column
        dpt, dq, precip, flops = large_scale_condensation(pt, q)
        np.testing.assert_allclose(dpt, 0.0)
        np.testing.assert_allclose(dq, 0.0)
        np.testing.assert_allclose(precip, 0.0)
        assert flops[0] == COND_TRIGGER

    def test_wet_layer_condenses(self, wet_column):
        pt, q = wet_column
        dpt, dq, precip, flops = large_scale_condensation(pt, q)
        assert dq[0, 3] < 0          # moisture removed
        assert dpt[0, 3] > 0         # latent heating
        assert flops[0] == COND_TRIGGER + COND_PER_WET_LAYER

    def test_supersaturated_layer_count(self, wet_column):
        pt, q = wet_column
        assert supersaturated_layers(pt, q)[0] == 1

    def test_cost_scales_with_wet_layers(self):
        pt = np.full((2, 6), PT_REFERENCE)
        q = 0.5 * saturation_q(pt)
        q[1, :3] = 2.0 * saturation_q(pt)[1, :3]
        _, _, _, flops = large_scale_condensation(pt, q)
        assert flops[1] == flops[0] + 3 * COND_PER_WET_LAYER


class TestBudgets:
    def test_rainout_fraction(self, wet_column):
        pt, q = wet_column
        _, dq, precip, _ = large_scale_condensation(pt, q)
        excess = q[0, 3] - saturation_q(pt)[0, 3]
        removed = -dq[0, 3]
        assert removed <= RAINOUT_RATE * excess + 1e-15

    def test_moisture_budget_closes(self, wet_column):
        """Condensed moisture = precipitation + re-evaporation."""
        pt, q = wet_column
        _, dq, precip, _ = large_scale_condensation(pt, q)
        assert dq.sum() + precip.sum() == pytest.approx(0.0, abs=1e-15)

    def test_heating_proportional_to_net_condensation(self, wet_column):
        pt, q = wet_column
        dpt, dq, _, _ = large_scale_condensation(pt, q)
        np.testing.assert_allclose(dpt.sum(), -LATENT_FACTOR * dq.sum())

    def test_reevaporation_moistens_dry_layers_below(self):
        pt = np.full((1, 5), PT_REFERENCE)
        q = 0.1 * saturation_q(pt)            # very dry column...
        q[0, 4] = 3.0 * saturation_q(pt)[0, 4]  # ...with a wet top layer
        _, dq, precip, _ = large_scale_condensation(pt, q)
        assert np.all(dq[0, :4] >= 0)
        assert dq[0, :4].sum() > 0
        assert precip[0] >= 0

    def test_precipitation_nonnegative(self, rng):
        pt = PT_REFERENCE + rng.standard_normal((20, 6))
        q = 0.02 * rng.random((20, 6))
        _, _, precip, _ = large_scale_condensation(pt, q)
        assert np.all(precip >= -1e-15)


class TestDriverIntegration:
    def test_driver_reports_precip(self, rng):
        from repro.physics.driver import ColumnSet, run_physics

        pt = PT_REFERENCE + rng.standard_normal((10, 5))
        q = 2.0 * saturation_q(pt) * rng.random((10, 5))
        cols = ColumnSet(
            pt=pt, q=q,
            lat_rad=rng.uniform(-1, 1, 10),
            lon_rad=rng.uniform(0, 6, 10),
        )
        result = run_physics(cols, 0.3, 2)
        assert result.precip is not None
        assert result.precip.shape == (10,)
        assert np.all(result.precip >= 0)

    def test_flops_still_match_estimator(self, rng):
        from repro.physics.driver import ColumnSet, run_physics
        from repro.physics.workload import column_flops

        pt = PT_REFERENCE + rng.standard_normal((15, 5))
        q = 1.5 * saturation_q(pt) * rng.random((15, 5))
        cols = ColumnSet(
            pt=pt, q=q,
            lat_rad=rng.uniform(-1, 1, 15),
            lon_rad=rng.uniform(0, 6, 15),
        )
        result = run_physics(cols, 0.6, 4)
        np.testing.assert_allclose(result.flops, column_flops(cols, 0.6, 4))
