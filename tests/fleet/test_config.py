"""FleetConfig parsing, validation, and the dial backoff schedule."""

from __future__ import annotations

import pytest

from repro.fleet.config import DEFAULT_LISTEN, FleetConfig, parse_address


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:7900") == ("127.0.0.1", 7900)

    def test_port_zero_allowed(self):
        assert parse_address("0.0.0.0:0") == ("0.0.0.0", 0)

    @pytest.mark.parametrize("bad", ["nohost", ":80", "h:notaport",
                                     "h:70000"])
    def test_bad_addresses_are_actionable(self, bad):
        with pytest.raises(ValueError, match="bad fleet address"):
            parse_address(bad)


class TestCoerce:
    def test_none_false_empty_disable(self):
        assert FleetConfig.coerce(None) is None
        assert FleetConfig.coerce(False) is None
        assert FleetConfig.coerce("") is None

    def test_true_listens_on_default(self):
        cfg = FleetConfig.coerce(True)
        assert cfg.listen == DEFAULT_LISTEN

    def test_address_list_dials_workers(self):
        cfg = FleetConfig.coerce("10.0.0.1:7900, 10.0.0.2:7900")
        assert cfg.workers == ("10.0.0.1:7900", "10.0.0.2:7900")
        assert cfg.listen is None

    def test_sequence_spelling(self):
        cfg = FleetConfig.coerce(["h1:1", "h2:2"])
        assert cfg.workers == ("h1:1", "h2:2")

    def test_listen_spellings(self):
        assert FleetConfig.coerce("listen").listen == DEFAULT_LISTEN
        assert FleetConfig.coerce("listen:0.0.0.0:7901").listen \
            == "0.0.0.0:7901"

    def test_config_passes_through(self):
        cfg = FleetConfig(listen="127.0.0.1:0")
        assert FleetConfig.coerce(cfg) is cfg

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="fleet must be"):
            FleetConfig.coerce(3.14)


class TestValidation:
    def test_needs_an_endpoint(self):
        with pytest.raises(ValueError, match="got neither"):
            FleetConfig()

    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="must exceed"):
            FleetConfig(listen="127.0.0.1:0",
                        heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_max_attempts_positive(self):
        with pytest.raises(ValueError):
            FleetConfig(listen="127.0.0.1:0", max_attempts=0)

    def test_bad_worker_address_rejected_at_construction(self):
        with pytest.raises(ValueError, match="bad fleet address"):
            FleetConfig(workers=("nonsense",))


class TestBackoff:
    def test_delays_grow_then_cap(self):
        cfg = FleetConfig(listen="127.0.0.1:0", reconnect_base=0.2,
                          reconnect_factor=2.0, reconnect_max=1.0,
                          reconnect_attempts=5)
        assert cfg.backoff_delays() == (0.2, 0.4, 0.8, 1.0, 1.0)

    def test_budget_is_finite(self):
        cfg = FleetConfig(listen="127.0.0.1:0", reconnect_attempts=3)
        assert len(cfg.backoff_delays()) == 3
