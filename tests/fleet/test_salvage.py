"""Salvage: sidecar-first probing, re-put replication, remembered dirs."""

from __future__ import annotations

import os

from repro.campaign.cache import ResultCache
from repro.fleet.salvage import (
    WORKER_DIRS_FILE,
    probe_dirs,
    remember_worker_dir,
    remembered_worker_dirs,
    salvage_value,
)

KEY = "ab" + "0" * 62  # a well-formed sha256-shaped unit key


def _put(root: str, key: str = KEY, value=None, **meta):
    cache = ResultCache(root)
    cache.put(key, value if value is not None else {"slept": 0.1},
              meta={"ident": "sleep", "duration": 0.1, **meta})
    return cache


class TestProbeDirs:
    def test_finds_complete_entry(self, tmp_path):
        donor = str(tmp_path / "w0")
        _put(donor)
        assert probe_dirs(KEY, [str(tmp_path / "missing"), donor]) == donor

    def test_requires_both_sidecar_and_payload(self, tmp_path):
        donor = str(tmp_path / "w0")
        cache = _put(donor)
        pkl_path, sidecar_path = cache._paths(KEY)
        os.remove(sidecar_path)
        assert probe_dirs(KEY, [donor]) is None  # payload without sidecar
        _put(donor)
        os.remove(pkl_path)
        assert probe_dirs(KEY, [donor]) is None  # sidecar without payload

    def test_skips_nonexistent_and_empty_dirs(self, tmp_path):
        assert probe_dirs(KEY, ["", str(tmp_path / "nope"), None]) is None


class TestSalvageValue:
    def test_replicates_into_main_cache(self, tmp_path):
        donor = str(tmp_path / "worker")
        _put(donor, value={"slept": 0.25}, host="w0:123")
        main = ResultCache(str(tmp_path / "main"))
        got = salvage_value(KEY, [donor], main)
        assert got is not None
        value, meta = got
        assert value == {"slept": 0.25}
        assert meta["host"] == "w0:123"
        # Exactly-once: the main cache now answers directly, so the next
        # campaign replays this unit as an ordinary hit.
        assert main.contains(KEY)
        assert main.get(KEY) == {"slept": 0.25}
        assert main.meta(KEY)["host"] == "w0:123"

    def test_main_cache_hit_short_circuits(self, tmp_path):
        main = _put(str(tmp_path / "main"), value={"slept": 1.0})
        got = salvage_value(KEY, [str(tmp_path / "absent")], main)
        assert got is not None
        assert got[0] == {"slept": 1.0}

    def test_unsalvageable_returns_none(self, tmp_path):
        main = ResultCache(str(tmp_path / "main"))
        assert salvage_value(KEY, [str(tmp_path / "absent")], main) is None
        assert not main.contains(KEY)


class TestRememberedWorkerDirs:
    def test_round_trip_and_dedup(self, tmp_path):
        main = ResultCache(str(tmp_path / "main"))
        w0 = str(tmp_path / "w0")
        w1 = str(tmp_path / "w1")
        remember_worker_dir(main, w0)
        remember_worker_dir(main, w1)
        remember_worker_dir(main, w0)  # duplicate: recorded once
        dirs = remembered_worker_dirs(main)
        assert dirs == [os.path.abspath(w0), os.path.abspath(w1)]
        assert os.path.exists(os.path.join(main.root, WORKER_DIRS_FILE))

    def test_own_root_is_never_recorded(self, tmp_path):
        main = ResultCache(str(tmp_path / "main"))
        remember_worker_dir(main, main.root)
        assert remembered_worker_dirs(main) == []

    def test_missing_or_corrupt_file_reads_empty(self, tmp_path):
        main = ResultCache(str(tmp_path / "main"))
        assert remembered_worker_dirs(main) == []
        with open(os.path.join(main.root, WORKER_DIRS_FILE), "w") as fh:
            fh.write("{not json")
        assert remembered_worker_dirs(main) == []
        assert remembered_worker_dirs(None) == []
