"""Salvaged/re-queued accounting on outcomes and the campaign report."""

from __future__ import annotations

import pytest

from repro.campaign.report import STATUSES, CampaignReport, UnitOutcome


def _outcome(label: str, status: str, **kw) -> UnitOutcome:
    defaults = dict(ident="sleep", key="k-" + label, worker=0,
                    seconds=0.1, compute_seconds=0.1)
    defaults.update(kw)
    return UnitOutcome(label=label, status=status, **defaults)


def test_salvaged_is_a_registered_status():
    assert "salvaged" in STATUSES
    o = _outcome("a", "salvaged", worker=-1, host="w0:11", attempt=2)
    assert o.attempt == 2 and o.host == "w0:11"


def test_bad_status_still_rejected():
    with pytest.raises(ValueError, match="bad status"):
        _outcome("a", "rescued")


def test_report_counts_salvage_and_requeue():
    report = CampaignReport(
        sweep="<custom>", workers=3, wall_seconds=1.0,
        outcomes=[
            _outcome("a", "ran", host="w0:1"),
            _outcome("b", "salvaged", worker=-1, attempt=2),
            _outcome("c", "ran", attempt=3),
        ],
        fleet={"workers": {"w0": "w0:1"}, "events": [],
               "salvaged": 1, "degraded": False},
    )
    assert report.salvaged == 1
    assert report.requeued == 2
    assert report.failures == 0
    # Salvaged units count as misses (they were computed this campaign).
    assert report.cache_misses == 3


def test_to_json_carries_fleet_and_attribution():
    report = CampaignReport(
        sweep="<custom>", workers=1, wall_seconds=1.0,
        outcomes=[_outcome("a", "salvaged", worker=-1,
                           host="w1:99", attempt=2)],
        fleet={"workers": {"w1": "w1:99"}, "events": [],
               "salvaged": 1, "degraded": True},
    )
    doc = report.to_json()
    assert doc["salvaged"] == 1
    assert doc["requeued"] == 1
    assert doc["fleet"]["degraded"] is True
    (unit,) = doc["units"]
    assert unit["host"] == "w1:99"
    assert unit["attempt"] == 2


def test_tables_render_recovery_rows():
    report = CampaignReport(
        sweep="<custom>", workers=1, wall_seconds=1.0,
        outcomes=[_outcome("a", "salvaged", worker=-1,
                           host="w0:7", attempt=2)],
        fleet={"workers": {"w0": "w0:7"}, "events": [],
               "salvaged": 1, "degraded": False},
    )
    summary = report.summary_table().render()
    assert "salvaged" in summary
    assert "re-queued" in summary
    assert "fleet workers" in summary
    units = report.unit_table().render()
    assert "attempt 2" in units
    assert "w0:7" in units
