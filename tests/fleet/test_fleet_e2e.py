"""End-to-end fleet campaigns over TCP: chaos matrix, salvage, degradation.

Everything here spawns real worker subprocesses and carries the
``fleet`` marker (opt-in: ``pytest -m fleet``).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.campaign import run_campaign
from repro.campaign.cache import ResultCache
from repro.campaign.scheduler import _run_pool
from repro.campaign.units import enumerate_units, sort_for_schedule
from repro.fleet.harness import LocalFleet
from repro.fleet.salvage import remember_worker_dir

pytestmark = pytest.mark.fleet

SELECTORS = [f"sleep:0.3#{i}" for i in range(8)]


def _same_value(a, b) -> bool:
    """Bit-level structural equality across the result payload types."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (a.dtype == b.dtype and a.shape == b.shape
                and np.array_equal(a, b, equal_nan=a.dtype.kind == "f"))
    if isinstance(a, dict):
        return (a.keys() == b.keys()
                and all(_same_value(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)):
        return (len(a) == len(b)
                and all(_same_value(x, y) for x, y in zip(a, b)))
    return a == b


class TestFaultFreeFleet:
    def test_units_distribute_and_attribute(self, tmp_path):
        cache = str(tmp_path / "cache")
        with LocalFleet(nworkers=3, cache_dir=cache) as fleet:
            report = run_campaign(
                [f"sleep:0.2#{i}" for i in range(6)],
                fleet=fleet.config, cache_dir=cache,
            )
        assert report.failures == 0
        assert report.cache_misses == 6
        assert len(report.fleet["workers"]) == 3
        for o in report.outcomes:
            assert o.status == "ran"
            assert o.host and ":" in o.host

    def test_worker_without_cache_dir_still_fills_coordinator_cache(
            self, tmp_path):
        """A worker with no --cache-dir adopts the coordinator's dir
        from the welcome frame (and the coordinator mirrors reported
        results regardless), so a resume is pure hits even though the
        coordinator's cache was empty — and therefore falsy — at
        handshake time."""
        cache = str(tmp_path / "cache")
        selectors = [f"sleep:0.1#adopt{i}" for i in range(4)]
        with LocalFleet(nworkers=2, cache_dir=None) as fleet:
            report = run_campaign(selectors, fleet=fleet.config,
                                  cache_dir=cache)
        assert report.failures == 0
        assert report.cache_misses == len(selectors)
        again = run_campaign(resume=True, cache_dir=cache)
        assert again.cache_misses == 0
        assert again.hit_rate == 1.0

    def test_results_db_records_worker_hosts(self, tmp_path):
        cache = str(tmp_path / "cache")
        db_path = str(tmp_path / "results.db")
        with LocalFleet(nworkers=2, cache_dir=cache) as fleet:
            report = run_campaign(
                [f"sleep:0.1#{i}" for i in range(4)],
                fleet=fleet.config, cache_dir=cache, results_db=db_path,
            )
        assert report.failures == 0
        from repro.results.db import ResultsDB

        with ResultsDB(db_path) as db:
            _, rows = db.query(
                "SELECT host FROM runs WHERE host IS NOT NULL"
            )
        assert len(rows) == 4


class TestChaosMatrix:
    """Kill/hang/disconnect one of three workers mid-campaign: every
    unit is accounted, the completed-before-death unit is salvaged (not
    recomputed), and merged results are bit-identical to a fault-free
    serial run."""

    @pytest.mark.parametrize("action", ["kill", "hang", "disconnect"])
    def test_one_faulty_worker(self, tmp_path, action):
        cache = str(tmp_path / "cache")
        with LocalFleet(nworkers=3, cache_dir=cache,
                        chaos={0: f"{action}@2"}) as fleet:
            report = run_campaign(SELECTORS, fleet=fleet.config,
                                  cache_dir=cache)

        assert report.failures == 0
        assert report.units_total == len(SELECTORS)
        # The faulty worker completed+cached its second unit but never
        # reported it: that unit must come back salvaged, not recomputed.
        assert report.salvaged == 1
        assert report.fleet["salvaged"] == 1
        deaths = [e for e in report.fleet["events"]
                  if e.get("event") == "death"]
        assert deaths, report.fleet["events"]

        serial = run_campaign(SELECTORS)
        s, f = serial.results(), report.results()
        assert s.keys() == f.keys()
        for label in s:
            assert _same_value(s[label], f[label]), label

    def test_rerun_after_chaos_is_pure_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        with LocalFleet(nworkers=3, cache_dir=cache,
                        chaos={0: "kill@2"}) as fleet:
            first = run_campaign(SELECTORS, fleet=fleet.config,
                                 cache_dir=cache)
        assert first.failures == 0
        # Resume replays the manifest; everything (including the
        # salvaged unit) is cached, so nothing recomputes.
        again = run_campaign(resume=True, cache_dir=cache)
        assert again.cache_misses == 0
        assert again.hit_rate == 1.0


class TestDegradationLadder:
    def test_zero_reachable_workers_falls_back_locally(self, tmp_path):
        from repro.fleet.config import FleetConfig
        from repro.fleet.harness import free_port

        cfg = FleetConfig(
            workers=(f"127.0.0.1:{free_port()}",),
            connect_grace=1.0, reconnect_attempts=2,
        )
        with pytest.warns(RuntimeWarning, match="no worker reachable"):
            report = run_campaign(
                ["sleep:0.05#a", "sleep:0.05#b"],
                fleet=cfg, cache_dir=str(tmp_path),
            )
        assert report.failures == 0
        assert report.units_total == 2

    def test_all_workers_dead_finishes_locally(self, tmp_path):
        cache = str(tmp_path / "cache")
        with LocalFleet(nworkers=2, cache_dir=cache,
                        chaos={0: "kill@1", 1: "kill@1"}) as fleet:
            report = run_campaign(
                [f"sleep:0.2#{i}" for i in range(4)],
                fleet=fleet.config, cache_dir=cache,
            )
        assert report.failures == 0
        assert report.units_total == 4
        assert report.fleet["degraded"] is True
        # Each worker cached one unit before dying: salvaged, never
        # recomputed.  The remainder ran on the coordinator.
        assert report.salvaged == 2


class TestCoordinatorRestartSalvage:
    def test_remembered_worker_dirs_swept_before_dispatch(self, tmp_path):
        """A worker cache dir recorded by a dead coordinator run is
        salvaged wholesale by the next campaign: zero recomputes."""
        worker_dir = str(tmp_path / "worker-cache")
        main_dir = str(tmp_path / "main-cache")
        selectors = [f"sleep:0.1#{i}" for i in range(4)]
        # The "previous" campaign: workers computed everything into
        # their local cache, coordinator died before hearing about it.
        donor = run_campaign(selectors, cache_dir=worker_dir)
        assert donor.failures == 0
        remember_worker_dir(ResultCache(main_dir), worker_dir)

        t0 = time.perf_counter()
        with LocalFleet(nworkers=1, cache_dir=main_dir) as fleet:
            report = run_campaign(selectors, fleet=fleet.config,
                                  cache_dir=main_dir)
        assert report.failures == 0
        assert report.salvaged == len(selectors)
        # Salvage is a disk walk, not a recompute: far under the 0.4 s
        # of sleeping the units would need.
        assert time.perf_counter() - t0 < 30


class TestLocalPoolRequeue:
    def test_killed_worker_unit_retries_under_attempt_budget(
            self, tmp_path):
        """SIGKILL the only pool worker mid-unit; with max_attempts=2
        the lost unit is re-dispatched (or salvaged from its cache
        write) instead of failing."""
        import multiprocessing as mp
        import threading

        units = sort_for_schedule(enumerate_units(["sleep:1.5#requeue"]))

        def _killer():
            deadline = time.time() + 10
            while time.time() < deadline:
                children = mp.active_children()
                if children:
                    time.sleep(0.2)  # let it dequeue, not finish
                    for child in mp.active_children():
                        if child.pid:
                            os.kill(child.pid, signal.SIGKILL)
                    return
                time.sleep(0.05)

        thread = threading.Thread(target=_killer, daemon=True)
        thread.start()
        try:
            outcomes = _run_pool(units, 1, str(tmp_path), False,
                                 max_attempts=2)
        finally:
            thread.join(timeout=15)

        assert len(outcomes) == 1
        (outcome,) = outcomes
        assert outcome.status in ("ran", "salvaged")
        assert outcome.attempt == 2
