"""AttemptTracker: the shared re-queue/quarantine accounting."""

from __future__ import annotations

from repro.fleet.requeue import AttemptTracker


def test_start_counts_dispatches():
    t = AttemptTracker(max_attempts=3)
    assert t.start("k") == 1
    assert t.start("k") == 2
    assert t.attempts("k") == 2
    assert t.attempts("other") == 0


def test_exhausted_at_the_cap():
    t = AttemptTracker(max_attempts=2)
    t.start("k")
    assert not t.exhausted("k")
    t.start("k")
    assert t.exhausted("k")


def test_keys_are_independent():
    t = AttemptTracker(max_attempts=1)
    t.start("a")
    assert t.exhausted("a")
    assert not t.exhausted("b")


def test_quarantine_error_names_the_poison():
    t = AttemptTracker(max_attempts=2)
    for host in ("host-a:101", "host-b:202"):
        t.start("k")
        t.record_loss("k", host)
    msg = t.quarantine_error("k", "sleep:0.1#x")
    # "worker died" is the substring the pool's failure contract keys on.
    assert "worker died" in msg
    assert "'sleep:0.1#x'" in msg
    assert "2/2" in msg
    assert "host-a:101" in msg and "host-b:202" in msg


def test_quarantine_error_without_recorded_hosts():
    t = AttemptTracker(max_attempts=1)
    t.start("k")
    msg = t.quarantine_error("k", "unit")
    assert "worker died" in msg
    assert "workers lost" not in msg
