"""Chaos plans are deterministic and survive the spec round trip."""

from __future__ import annotations

import pytest

from repro.fleet.chaos import ACTIONS, ChaosEvent, ChaosPlan


class TestScriptedEvents:
    def test_fires_exactly_at_boundary(self):
        plan = ChaosPlan(events=(ChaosEvent("kill", 2),))
        assert plan.decide("w0", 1) is None
        assert plan.decide("w0", 2) == "kill"
        assert plan.decide("w0", 3) is None

    def test_scripted_event_ignores_worker_name(self):
        plan = ChaosPlan(events=(ChaosEvent("hang", 1),))
        assert plan.decide("a", 1) == "hang"
        assert plan.decide("b", 1) == "hang"

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosEvent("explode", 1)

    def test_boundary_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            ChaosEvent("kill", 0)

    def test_probability_bounds_checked(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ChaosPlan(probability=1.5)


class TestSeededDraws:
    def test_decisions_are_pure_in_seed_name_boundary(self):
        plan = ChaosPlan(seed=7, probability=0.3)
        first = [plan.decide("w1", b) for b in range(1, 50)]
        again = [plan.decide("w1", b) for b in range(1, 50)]
        assert first == again
        # An equal plan built independently decides identically.
        clone = ChaosPlan.parse(plan.spec())
        assert [clone.decide("w1", b) for b in range(1, 50)] == first

    def test_different_workers_draw_independently(self):
        plan = ChaosPlan(seed=7, probability=0.5)
        a = [plan.decide("w1", b) for b in range(1, 100)]
        b = [plan.decide("w2", b) for b in range(1, 100)]
        assert a != b

    def test_drawn_actions_are_registered(self):
        plan = ChaosPlan(seed=3, probability=1.0)
        for boundary in range(1, 30):
            assert plan.decide("w", boundary) in ACTIONS

    def test_zero_probability_never_fires(self):
        plan = ChaosPlan(seed=3)
        assert all(plan.decide("w", b) is None for b in range(1, 100))


class TestSpecStrings:
    @pytest.mark.parametrize("spec", [
        "kill@2",
        "disconnect@1,hang@3",
        "seed=7:p=0.1",
        "kill@4,seed=12:p=0.25",
        "",
    ])
    def test_round_trip(self, spec):
        plan = ChaosPlan.parse(spec)
        assert ChaosPlan.parse(plan.spec()) == plan

    def test_none_is_no_chaos(self):
        assert ChaosPlan.parse(None) == ChaosPlan()

    def test_bad_spec_names_expected_form(self):
        with pytest.raises(ValueError, match="ACTION@BOUNDARY"):
            ChaosPlan.parse("kill")
        with pytest.raises(ValueError, match="seed=<int>"):
            ChaosPlan.parse("seed=banana")
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosPlan.parse("explode@1")
