"""Frame codec: round trips, rejection paths, and a real socket echo."""

from __future__ import annotations

import os
import socket
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.fleet.frames import (
    DEFAULT_MAX_BYTES,
    HEADER,
    KINDS,
    MAGIC,
    FrameDecoder,
    FrameError,
    decode_frame,
    encode_frame,
)

# -- basic round trips --------------------------------------------------


def test_every_kind_round_trips():
    for kind in KINDS:
        payload = {"kind": kind, "n": 3}
        blob = encode_frame(kind, payload)
        got_kind, got_payload, consumed = decode_frame(blob)
        assert got_kind == kind
        assert got_payload == payload
        assert consumed == len(blob)


def test_unknown_kind_rejected():
    with pytest.raises(FrameError, match="unknown frame kind"):
        encode_frame("telegram", {})


_JSON_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=10,
)


@settings(max_examples=60, deadline=None)
@given(payload=st.dictionaries(st.text(max_size=12), _JSON_VALUES,
                               max_size=5))
def test_json_params_dict_round_trips(payload):
    # Control frames (hello/welcome/heartbeat) carry params-style dicts.
    blob = encode_frame("hello", payload)
    kind, got, consumed = decode_frame(blob)
    assert kind == "hello"
    assert got == payload
    assert consumed == len(blob)


@settings(max_examples=30, deadline=None)
@given(
    arr=arrays(
        dtype=st.sampled_from([np.float64, np.float32, np.int64,
                               np.complex128]),
        shape=st.tuples(st.integers(0, 8), st.integers(0, 5)),
        elements=st.just(0),
        fill=st.nothing(),
    ).map(lambda a: a + np.arange(a.size, dtype=a.dtype.char
                                  ).reshape(a.shape)),
    label=st.text(max_size=16),
)
def test_pickled_numpy_payload_round_trips(arr, label):
    # Assign/result frames carry numpy-laden campaign objects via pickle.
    payload = {"label": label, "value": arr, "meta": {"shape": arr.shape}}
    kind, got, _ = decode_frame(encode_frame("result", payload))
    assert kind == "result"
    assert got["label"] == label
    assert got["meta"] == {"shape": arr.shape}
    assert got["value"].dtype == arr.dtype
    assert np.array_equal(got["value"], arr)


# -- rejection: truncation, size, magic ---------------------------------


def test_truncated_header_is_actionable():
    with pytest.raises(FrameError, match="header needs"):
        decode_frame(b"RF")


def test_truncated_payload_names_byte_counts():
    blob = encode_frame("hello", {"worker": 1})
    with pytest.raises(FrameError, match=r"promises \d+ bytes"):
        decode_frame(blob[:-3])


def test_bad_magic_names_protocol():
    blob = b"XXXX" + encode_frame("hello", {})[4:]
    with pytest.raises(FrameError, match="bad magic"):
        decode_frame(blob)


def test_oversized_encode_rejected_with_limit():
    with pytest.raises(FrameError, match="exceeds the 64-byte"):
        encode_frame("hello", {"pad": "x" * 128}, max_bytes=64)


def test_oversized_decode_rejected_before_buffering():
    # A hostile length field must fail on the header alone.
    header = HEADER.pack(MAGIC, 0, 0, DEFAULT_MAX_BYTES + 1)
    with pytest.raises(FrameError, match="refusing to buffer"):
        decode_frame(header)


def test_decoder_rejects_oversized_without_payload():
    dec = FrameDecoder(max_bytes=1024)
    dec.feed(HEADER.pack(MAGIC, 0, 0, 1 << 30))
    with pytest.raises(FrameError, match="frame limit"):
        list(dec.frames())


# -- incremental decoding -----------------------------------------------


def test_decoder_reassembles_byte_by_byte():
    frames = [("hello", {"worker": i}) for i in range(3)]
    stream = b"".join(encode_frame(k, p) for k, p in frames)
    dec = FrameDecoder()
    got = []
    for i in range(len(stream)):
        dec.feed(stream[i:i + 1])
        got.extend(dec.frames())
    assert got == frames
    assert dec.buffered == 0


def test_decoder_keeps_partial_frame_buffered():
    blob = encode_frame("heartbeat", {"busy": True})
    dec = FrameDecoder()
    dec.feed(blob[:-1])
    assert list(dec.frames()) == []
    assert dec.buffered == len(blob) - 1
    dec.feed(blob[-1:])
    assert list(dec.frames()) == [("heartbeat", {"busy": True})]


# -- two-process socket echo --------------------------------------------


def _src_path() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)), "src")


def test_echo_server_round_trips_frames_over_tcp():
    """Frames survive a real encode/send/recv/decode trip across
    processes: ``python -m repro fleet echo`` reflects them verbatim."""
    from repro.fleet.frames import read_frame, send_frame

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "echo",
         "--listen", "127.0.0.1:0", "--once"],
        env={**os.environ, "PYTHONPATH": _src_path()},
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("echo listening on "), line
        host, _, port = line[len("echo listening on "):].rpartition(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            messages = [
                ("hello", {"name": "w0", "pid": 123}),
                ("result", {"value": np.arange(12.0).reshape(3, 4)}),
                ("goodbye", {"reason": "done"}),
            ]
            for kind, payload in messages:
                send_frame(sock, kind, payload)
                got_kind, got = read_frame(sock, timeout=10)
                assert got_kind == kind
                if kind == "result":
                    assert np.array_equal(got["value"], payload["value"])
                else:
                    assert got == payload
        assert proc.wait(timeout=10) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        proc.stdout.close()
