"""Concurrency regression tests for ``ResultCache.put``.

The store's claim: writes are atomic (``mkstemp`` + ``os.replace`` in
the target directory), so racing writers on the *same key* can never
produce a torn read — a reader sees one writer's bytes in full, and
the last ``os.replace`` wins wholesale.  These tests race the claim
from both concurrency models the repo uses: separate processes (the
campaign worker pool) and asyncio tasks sharing a loop (the service
gateway's thread offloads).
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import pickle

import pytest

from repro.campaign.cache import ResultCache

#: Payloads big enough that a non-atomic write would interleave across
#: page-sized chunks (~1.6 MB pickled each).
_PAYLOAD_WORDS = 200_000
KEY = "deadbeef" * 8  # 64 hex chars, like a real sha256 key


def _payload(writer: str):
    return {"writer": writer, "blob": [writer] * _PAYLOAD_WORDS}


def _hammer(root: str, writer: str, rounds: int, barrier) -> None:
    cache = ResultCache(root)
    value = _payload(writer)
    for _ in range(rounds):
        barrier.wait()
        cache.put(KEY, value, meta={"writer": writer})


def _consistent(value, meta) -> None:
    """A read must be exactly one writer's payload, never a mixture."""
    assert value is not None
    writer = value["writer"]
    assert writer in ("a", "b")
    assert value["blob"][0] == writer and value["blob"][-1] == writer
    assert len(value["blob"]) == _PAYLOAD_WORDS
    # metadata is itself readable, complete JSON from a single writer
    if meta:
        assert meta["writer"] in ("a", "b")
        assert meta["key"] == KEY


@pytest.mark.campaign
class TestProcessRace:
    def test_two_processes_racing_put_never_tear(self, tmp_path):
        root = str(tmp_path)
        rounds = 20
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(3)
        procs = [
            ctx.Process(target=_hammer, args=(root, w, rounds, barrier))
            for w in ("a", "b")
        ]
        for p in procs:
            p.start()
        cache = ResultCache(root)
        try:
            for _ in range(rounds):
                barrier.wait()  # release both writers simultaneously
                # read while the writers race
                for _ in range(10):
                    value = cache.get(KEY)
                    if value is not None:
                        _consistent(value, cache.meta(KEY))
        finally:
            for p in procs:
                p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        # last writer won wholesale: the stored entry is one complete
        # payload and its pickle round-trips bit-identically
        final = cache.get(KEY)
        _consistent(final, cache.meta(KEY))
        assert pickle.dumps(final, protocol=4) == pickle.dumps(
            _payload(final["writer"]), protocol=4
        )


class TestAsyncioRace:
    def test_two_tasks_racing_put_never_tear(self, tmp_path):
        """The gateway path: concurrent tasks offloading puts to
        threads over one loop."""
        cache = ResultCache(str(tmp_path))

        async def writer(name: str, rounds: int):
            value = _payload(name)
            for _ in range(rounds):
                await asyncio.to_thread(
                    cache.put, KEY, value, {"writer": name}
                )

        async def reader(rounds: int):
            for _ in range(rounds):
                value = await asyncio.to_thread(cache.get, KEY)
                if value is not None:
                    _consistent(value, cache.meta(KEY))
                await asyncio.sleep(0)

        async def race():
            await asyncio.gather(
                writer("a", 15), writer("b", 15), reader(40)
            )

        asyncio.run(race())
        _consistent(cache.get(KEY), cache.meta(KEY))

    def test_no_tmp_droppings_survive(self, tmp_path):
        """Atomic writes clean up after themselves: no .tmp- files left
        once the dust settles."""
        cache = ResultCache(str(tmp_path))

        async def race():
            await asyncio.gather(*(
                asyncio.to_thread(cache.put, KEY, _payload(w), None)
                for w in ("a", "b", "a", "b")
            ))

        asyncio.run(race())
        leftovers = [
            p for p in tmp_path.rglob(".tmp-*")
        ]
        assert leftovers == []
