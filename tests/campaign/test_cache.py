"""Content-addressed cache: key stability, round-trips, atomicity."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.campaign.cache import ResultCache, cache_key, canonical_params


class TestCanonicalParams:
    def test_tuples_and_lists_hash_alike(self):
        assert canonical_params((1, 2, (3, 4))) == canonical_params(
            [1, 2, [3, 4]]
        )

    def test_dict_order_is_irrelevant(self):
        a = {"meshes": ((4, 4),), "nsteps": 8}
        b = {"nsteps": 8, "meshes": ((4, 4),)}
        assert canonical_params(a) == canonical_params(b)

    def test_numpy_scalars_collapse(self):
        assert canonical_params(np.int64(4)) == 4
        assert canonical_params(np.float64(0.5)) == 0.5

    def test_uncacheable_value_raises(self):
        with pytest.raises(TypeError, match="not\\s+cacheable"):
            canonical_params({"machine": object()})


class TestCacheKey:
    def test_stable_across_spellings(self):
        k1 = cache_key("table8", {"meshes": ((4, 8),)}, "1.0.0")
        k2 = cache_key("table8", {"meshes": [[4, 8]]}, "1.0.0")
        assert k1 == k2
        assert len(k1) == 64

    def test_sensitive_to_every_component(self):
        base = cache_key("table8", {"meshes": ((4, 8),)}, "1.0.0")
        assert cache_key("table9", {"meshes": ((4, 8),)}, "1.0.0") != base
        assert cache_key("table8", {"meshes": ((8, 8),)}, "1.0.0") != base
        assert cache_key("table8", {"meshes": ((4, 8),)}, "1.0.1") != base

    def test_matches_value_recorded_at_version_1(self):
        # Golden key: if canonicalization or the hash recipe ever
        # changes, every existing cache silently invalidates — make
        # that an explicit, reviewed event rather than an accident.
        assert cache_key("fig1", {"nsteps": 8}, "1.0.0") == (
            "921c5a9b77760786f7fbddcbec60dc217b9a7cb8a3f337a6521d575576d9928b"
        )


class TestResultCache:
    def test_roundtrip_bit_exact(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        rng = np.random.default_rng(3)
        value = {"arr": rng.standard_normal(32), "n": 7}
        key = cache_key("x", {}, "v")
        cache.put(key, value, meta={"duration": 1.25})
        assert cache.contains(key)
        loaded = cache.get(key)
        assert loaded["n"] == 7
        assert loaded["arr"].dtype == value["arr"].dtype
        np.testing.assert_array_equal(loaded["arr"], value["arr"])
        assert cache.meta(key)["duration"] == 1.25

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("0" * 64) is None
        assert not cache.contains("0" * 64)

    def test_no_temp_litter_after_put(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("ab" * 32, [1, 2, 3])
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_keys_enumerates_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        keys = {cache_key("e", {"i": i}, "v") for i in range(5)}
        for k in keys:
            cache.put(k, k)
        assert set(cache.keys()) == keys
        assert len(cache) == 5

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "cd" * 32
        cache.put(key, {"ok": True})
        pkl = os.path.join(str(tmp_path), key[:2], key + ".pkl")
        with open(pkl, "wb") as fh:
            fh.write(b"\x80")  # truncated pickle
        assert cache.get(key) is None

    def test_manifest_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.read_manifest() is None
        cache.write_manifest({"selectors": ["fig1"], "workers": 2})
        assert cache.read_manifest()["selectors"] == ["fig1"]


class TestSidecarProvenance:
    """put() stamps created_at / bytes / result_sha256 at write time so
    the result index can ingest an entry without unpickling it."""

    def test_put_stamps_provenance(self, tmp_path):
        import hashlib
        import pickle
        from datetime import datetime

        cache = ResultCache(str(tmp_path))
        key = cache_key("x", {"n": 1}, "v")
        value = {"n": 7}
        cache.put(key, value, meta={"duration": 0.5})
        meta = cache.meta(key)
        assert meta["duration"] == 0.5  # caller meta survives
        payload = pickle.dumps(value, protocol=4)
        assert meta["bytes"] == len(payload)
        # Same recipe as the gateway's bit-identity witness.
        assert meta["result_sha256"] \
            == hashlib.sha256(payload).hexdigest()
        stamped = datetime.fromisoformat(meta["created_at"])
        assert stamped.tzinfo is not None  # explicit UTC, not naive

    def test_bytes_match_payload_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("x", {"n": 2}, "v")
        cache.put(key, list(range(100)))
        pkl = os.path.join(str(tmp_path), key[:2], key + ".pkl")
        assert cache.meta(key)["bytes"] == os.path.getsize(pkl)

    def test_caller_meta_cannot_be_clobbered_silently(self, tmp_path):
        """Provenance stamping overwrites colliding caller keys — the
        stamp wins, documented here so a change is deliberate."""
        cache = ResultCache(str(tmp_path))
        key = cache_key("x", {"n": 3}, "v")
        cache.put(key, 1, meta={"bytes": -99})
        assert cache.meta(key)["bytes"] > 0
