"""Property tests for ``canonical_params``/``cache_key`` (Hypothesis).

The cache key is the identity of a computation everywhere in the
system: campaign memoization, resume manifests, and the service
gateway's request coalescing all assume that (a) two spellings of the
same parameter point produce the same key, (b) different points
produce different keys, and (c) a key computed today, in another
process, or on another machine is the same key.  These properties are
exactly what Hypothesis shakes here.
"""

from __future__ import annotations

import random
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.cache import cache_key, canonical_params

# -- parameter-tree strategies ------------------------------------------
# What real points are made of: primitives, strings, nested
# tuples/lists, string-keyed mappings (canonical_params stringifies
# keys, so non-string keys are fair game too but collide by design —
# keep keys strings here).

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)

params = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


def _respell(obj, rng: random.Random):
    """An equivalent spelling: lists<->tuples, dict order shuffled."""
    if isinstance(obj, dict):
        items = [(k, _respell(v, rng)) for k, v in obj.items()]
        rng.shuffle(items)
        return dict(items)
    if isinstance(obj, (list, tuple)):
        respelled = [_respell(v, rng) for v in obj]
        return tuple(respelled) if rng.random() < 0.5 else respelled
    return obj


class TestCanonicalization:
    @given(tree=params, seed=st.integers(0, 2**16))
    def test_key_invariant_under_respelling(self, tree, seed):
        """Dict insertion order and list-vs-tuple spelling never change
        the key."""
        respelled = _respell(tree, random.Random(seed))
        assert canonical_params(tree) == canonical_params(respelled)
        assert cache_key("exp", tree, "1.0.0") == cache_key(
            "exp", respelled, "1.0.0"
        )

    @given(a=params, b=params)
    def test_distinct_canonical_forms_get_distinct_keys(self, a, b):
        # The contract is on the *serialized* canonical form (that is
        # what gets hashed): Python equality would conflate True with 1
        # and -0.0 with 0.0, which the JSON document keeps apart.
        import json

        ca = json.dumps(canonical_params(a), sort_keys=True)
        cb = json.dumps(canonical_params(b), sort_keys=True)
        if ca == cb:
            assert cache_key("exp", a, "1") == cache_key("exp", b, "1")
        else:
            assert cache_key("exp", a, "1") != cache_key("exp", b, "1")

    @given(tree=params)
    def test_canonical_form_is_a_fixpoint(self, tree):
        once = canonical_params(tree)
        assert canonical_params(once) == once

    @given(tree=params)
    @settings(max_examples=25)
    def test_ident_and_version_partition_the_keyspace(self, tree):
        assert cache_key("a", tree, "1") != cache_key("b", tree, "1")
        assert cache_key("a", tree, "1") != cache_key("a", tree, "2")

    def test_numpy_scalars_collapse_to_python_numbers(self):
        spelled_numpy = {"n": np.int64(4), "x": np.float64(0.5),
                         "mesh": (np.int32(4), np.int32(8))}
        spelled_python = {"n": 4, "x": 0.5, "mesh": [4, 8]}
        assert canonical_params(spelled_numpy) == canonical_params(
            spelled_python
        )
        assert cache_key("e", spelled_numpy, "1") == cache_key(
            "e", spelled_python, "1"
        )

    def test_uncacheable_values_are_rejected(self):
        with pytest.raises(TypeError, match="not.*cacheable"):
            canonical_params({"f": object()})


class TestStability:
    #: The golden key: ``table8`` at its 4x4 point under version 1.0.0.
    #: Pinned so a refactor that silently changes key derivation (json
    #: separators, hash choice, canonical form) cannot invalidate every
    #: deployed cache unnoticed.
    GOLDEN = ("6eccd00c3d600a689736438e4463e301"
              "ad03f604d564c3d8cce5e0908c3c51e1")
    GOLDEN_ARGS = ("table8", {"point": "4x4",
                              "options": {"meshes": [[4, 4]]}}, "1.0.0")

    def test_golden_key_is_pinned(self):
        ident, point, version = self.GOLDEN_ARGS
        assert cache_key(ident, point, version) == self.GOLDEN

    def test_key_is_stable_across_processes(self):
        """A fresh interpreter derives the identical key (no per-process
        hash randomization leaks into the derivation)."""
        code = (
            "from repro.campaign.cache import cache_key;"
            "print(cache_key('table8', {'point': '4x4',"
            " 'options': {'meshes': [[4, 4]]}}, '1.0.0'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == self.GOLDEN
