"""Campaign scheduler: accounting, caching, resume, and parallel merge.

The fast tests here drive the serial path with cheap synthetic units.
Everything that forks a worker pool or runs real experiments carries the
``campaign`` marker and stays out of the default (tier-1) selection:

    python -m pytest -m campaign tests/campaign
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.campaign import run_campaign
from repro.campaign.cache import ResultCache
from repro.campaign.scheduler import _run_one, _run_pool
from repro.campaign.units import enumerate_units, sort_for_schedule

FAST = ["sleep:0.01#a", "sleep:0.01#b", "sleep:0.01#c"]


class TestSerialAccounting:
    def test_cold_run_is_all_misses(self, tmp_path):
        report = run_campaign(FAST, cache_dir=str(tmp_path))
        assert report.units_total == len(FAST)
        assert report.cache_hits == 0
        assert report.cache_misses == len(FAST)
        assert report.failures == 0

    def test_warm_rerun_is_all_hits(self, tmp_path):
        run_campaign(FAST, cache_dir=str(tmp_path))
        report = run_campaign(FAST, cache_dir=str(tmp_path))
        assert report.cache_hits == len(FAST)
        assert report.cache_misses == 0
        assert report.hit_rate == 1.0
        # Hits carry the original compute price, so the estimated
        # serial time stays honest while wall time collapses.
        assert report.serial_seconds > report.wall_seconds

    def test_no_cache_dir_never_hits(self):
        run_campaign(FAST)
        report = run_campaign(FAST)
        assert report.cache_hits == 0

    def test_use_cache_false_recomputes(self, tmp_path):
        run_campaign(FAST, cache_dir=str(tmp_path))
        report = run_campaign(FAST, cache_dir=str(tmp_path),
                              use_cache=False)
        assert report.cache_hits == 0
        assert report.cache_misses == len(FAST)

    def test_partial_warmth(self, tmp_path):
        run_campaign(FAST[:2], cache_dir=str(tmp_path))
        report = run_campaign(FAST, cache_dir=str(tmp_path))
        assert report.cache_hits == 2
        assert report.cache_misses == 1

    def test_outcomes_keep_enumeration_order(self, tmp_path):
        # LPT reorders execution; the report must not leak that.
        sel = ["sleep:0.01#z", "sleep:0.03#a", "sleep:0.02#m"]
        report = run_campaign(sel, cache_dir=str(tmp_path))
        assert [o.label for o in report.outcomes] == [
            u.label for u in enumerate_units(sel)
        ]

    def test_failed_unit_is_counted_not_raised(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (unit,) = enumerate_units(["sleep:0.01#boom"])
        object.__setattr__(unit.point, "options", (("seconds", "bad"),))
        outcome = _run_one(unit, 0, cache, observe=False)
        assert outcome.status == "failed"
        assert outcome.error
        assert not cache.contains(unit.key)

    def test_selectors_and_sweep_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            run_campaign(FAST, sweep="mini")

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to resume"):
            run_campaign(resume=True, cache_dir=str(tmp_path))


class TestMetricsMerge:
    def test_campaign_counters_present(self, tmp_path):
        report = run_campaign(FAST, cache_dir=str(tmp_path))
        data = report.metrics.as_dict()
        assert data["counters"]["campaign.units"] == len(FAST)
        assert data["counters"]["campaign.cache_misses"] == len(FAST)
        assert "campaign.wall_seconds" in data["gauges"]

    def test_registry_merge_semantics(self):
        from repro.obs import MetricsRegistry

        a = MetricsRegistry()
        a.counter("sim.bytes_sent").inc(10)
        a.gauge("sim.depth").set(3)
        b = MetricsRegistry()
        b.counter("sim.bytes_sent").inc(5)
        b.gauge("sim.depth").set(7)
        a.merge(b)
        merged = a.as_dict()
        assert merged["counters"]["sim.bytes_sent"] == 15
        assert merged["gauges"]["sim.depth"] == 7
        # as_dict form merges identically (what workers actually ship).
        a.merge({"counters": {"sim.bytes_sent": 1}, "gauges": {}})
        assert a.as_dict()["counters"]["sim.bytes_sent"] == 16


def _same_value(a, b) -> bool:
    """Bit-level structural equality across the result payload types."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (a.dtype == b.dtype and a.shape == b.shape
                and np.array_equal(a, b, equal_nan=a.dtype.kind == "f"))
    if isinstance(a, dict):
        return (a.keys() == b.keys()
                and all(_same_value(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)):
        return (len(a) == len(b)
                and all(_same_value(x, y) for x, y in zip(a, b)))
    if hasattr(a, "__dict__"):
        return _same_value(vars(a), vars(b))
    return a == b


@pytest.mark.campaign
class TestParallelCampaign:
    def test_pool_overlaps_synthetic_work(self, tmp_path):
        sel = [f"sleep:0.2#{i}" for i in range(4)]
        report = run_campaign(sel, workers=4, cache_dir=str(tmp_path))
        assert report.failures == 0
        assert report.cache_misses == 4
        # Four 0.2s sleeps across four workers: well under the 0.8s
        # serial time even with fork overhead.
        assert report.wall_seconds < 0.7
        assert report.speedup_vs_serial > 1.5
        assert len({o.worker for o in report.outcomes}) > 1

    def test_parallel_results_bit_identical_to_serial(self, tmp_path):
        sel = ["fig2_3", "fig4_6", "table8@4x4"]
        serial = run_campaign(sel, workers=1)
        parallel = run_campaign(sel, workers=4)
        assert parallel.failures == 0
        s, p = serial.results(), parallel.results()
        assert s.keys() == p.keys()
        for label in s:
            assert _same_value(s[label], p[label]), label

    def test_warm_hits_match_fresh_compute(self, tmp_path):
        sel = ["fig2_3", "table8@4x4"]
        cold = run_campaign(sel, cache_dir=str(tmp_path))
        warm = run_campaign(sel, cache_dir=str(tmp_path))
        assert warm.cache_hits == len(warm.outcomes)
        c, w = cold.results(), warm.results()
        for label in c:
            assert _same_value(c[label], w[label]), label

    def test_pool_reports_killed_worker_as_failure(self, tmp_path):
        # SIGKILL the worker mid-unit (the way an OOM killer would).
        # _run_pool's liveness check must convert the missing outcome
        # into a failure rather than hanging the parent.
        units = sort_for_schedule(enumerate_units(["sleep:30#hang"]))
        t0 = time.perf_counter()
        outcomes = _run_pool_with_kill(units, tmp_path)
        assert time.perf_counter() - t0 < 20
        assert len(outcomes) == 1
        assert outcomes[0].status == "failed"
        assert "worker died" in outcomes[0].error

    def test_obs_merges_worker_metrics(self, tmp_path):
        report = run_campaign(["table8@4x4", "table8@4x8"], workers=2,
                              obs=True, cache_dir=str(tmp_path))
        data = report.metrics.as_dict()
        sim_metrics = [
            name for name in data["counters"] if not name.startswith(
                "campaign."
            )
        ]
        assert sim_metrics, data


def _run_pool_with_kill(units, tmp_path):
    """Run _run_pool in-process while a thread SIGKILLs the workers."""
    import multiprocessing as mp
    import threading

    def _killer():
        deadline = time.time() + 10
        while time.time() < deadline:
            children = mp.active_children()
            if children:
                for child in children:
                    if child.pid:
                        os.kill(child.pid, signal.SIGKILL)
                return
            time.sleep(0.1)

    thread = threading.Thread(target=_killer, daemon=True)
    thread.start()
    try:
        return _run_pool(units, 1, str(tmp_path), False)
    finally:
        thread.join(timeout=15)


@pytest.mark.campaign
class TestResumeAfterKill:
    def test_resume_completes_interrupted_campaign(self, tmp_path):
        """SIGKILL a live 2-worker campaign mid-flight, then resume it.

        Workers cache every finished unit *before* reporting, so the
        killed run leaves completed entries behind; ``--resume`` replays
        the manifest and only the remainder recomputes.
        """
        cache_dir = str(tmp_path / "cache")
        selectors = [f"sleep:0.3#{i}" for i in range(8)]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign",
             *selectors, "--workers", "2", "--cache-dir", cache_dir],
            cwd=str(tmp_path),
            env={**os.environ, "PYTHONPATH": _src_path()},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            # Own process group, so the kill below takes the workers
            # down with the CLI parent (SIGKILL skips atexit, which is
            # what normally reaps daemonic children).
            start_new_session=True,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                if _cached_entries(cache_dir) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it was killed")
                time.sleep(0.05)
            else:
                pytest.fail("no cache entries appeared within 30s")
        finally:
            # Kill the process group: the CLI parent and its workers.
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.wait(timeout=10)

        done_before = _cached_entries(cache_dir)
        assert 2 <= done_before < len(selectors)

        report = run_campaign(resume=True, cache_dir=cache_dir, workers=2)
        assert report.resumed
        assert report.units_total == len(selectors)
        assert report.failures == 0
        assert report.cache_hits >= done_before
        assert report.cache_hits + report.cache_misses == len(selectors)
        # Everything is cached now: a further resume is pure hits.
        again = run_campaign(resume=True, cache_dir=cache_dir)
        assert again.hit_rate == 1.0


def _src_path() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)), "src")


def _cached_entries(cache_dir: str) -> int:
    if not os.path.isdir(cache_dir):
        return 0
    return sum(
        1
        for _, _, files in os.walk(cache_dir)
        for name in files
        if name.endswith(".pkl")
    )
