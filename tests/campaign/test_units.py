"""Unit enumeration, selectors, sweeps, and LPT scheduling order."""

from __future__ import annotations

import pytest

from repro.campaign.units import (
    SWEEPS,
    CampaignUnit,
    describe_sweep,
    enumerate_units,
    execute_unit,
    invalidated_units,
    sort_for_schedule,
    unit_manifest_entry,
    _resolve_options,
)
from repro.parallel import MachineModel
from repro.reporting.experiments import EXPERIMENTS, FILTER_MESHES


class TestEnumeration:
    def test_bare_ident_expands_every_point(self):
        units = enumerate_units(["table8"])
        assert len(units) == len(FILTER_MESHES)
        assert all(u.ident == "table8" for u in units)
        assert len({u.key for u in units}) == len(units)

    def test_point_selector_narrows_to_one(self):
        (unit,) = enumerate_units(["table8@4x4"])
        assert unit.label == "table8@4x4"
        assert unit.point.as_dict() == {"meshes": ((4, 4),)}

    def test_default_point_for_unparametrized_experiment(self):
        (unit,) = enumerate_units(["blockarray"])
        assert unit.point.label == "default"

    def test_duplicate_selectors_dedupe_by_key(self):
        units = enumerate_units(["table8@4x4", "table8", "table8@4x4"])
        assert len(units) == len(FILTER_MESHES)

    def test_unknown_ident_raises_with_hint(self):
        with pytest.raises(KeyError, match="unknown experiment 'tabel8'"):
            enumerate_units(["tabel8"])

    def test_unknown_point_label_raises(self):
        with pytest.raises(KeyError, match="no point '3x3'"):
            enumerate_units(["table8@3x3"])

    def test_version_changes_every_key(self):
        old = {u.label: u.key for u in enumerate_units(["table8"], "1")}
        new = {u.label: u.key for u in enumerate_units(["table8"], "2")}
        assert old.keys() == new.keys()
        assert all(old[lbl] != new[lbl] for lbl in old)


class TestSyntheticUnits:
    def test_sleep_selector_parses(self):
        (unit,) = enumerate_units(["sleep:0.25#tag"])
        assert unit.is_synthetic
        assert unit.est_cost == 0.25
        assert unit.point.as_dict()["seconds"] == 0.25

    def test_tags_distinguish_identical_durations(self):
        units = enumerate_units(["sleep:0.1#a", "sleep:0.1#b"])
        assert len(units) == 2
        assert units[0].key != units[1].key

    def test_bad_sleep_selector_raises(self):
        with pytest.raises(ValueError, match="bad synthetic selector"):
            enumerate_units(["sleep:fast"])

    def test_execute_returns_marker(self):
        (unit,) = enumerate_units(["sleep:0.01#x"])
        out = execute_unit(unit)
        assert out == {"slept": 0.01, "unit": unit.label}


class TestScheduling:
    def test_lpt_orders_longest_first(self):
        units = enumerate_units(
            ["sleep:0.1#a", "sleep:3#b", "sleep:1#c", "sleep:0.5#d"]
        )
        ordered = sort_for_schedule(units)
        costs = [u.est_cost for u in ordered]
        assert costs == sorted(costs, reverse=True)

    def test_ties_break_deterministically_by_label(self):
        units = enumerate_units(["sleep:1#b", "sleep:1#a", "sleep:1#c"])
        ordered = sort_for_schedule(units)
        assert [u.point.label for u in ordered] == ["1#a", "1#b", "1#c"]

    def test_bigger_mesh_costs_more(self):
        by_label = {u.label: u for u in enumerate_units(["table8"])}
        assert (by_label["table8@8x30"].est_cost
                > by_label["table8@4x4"].est_cost)


class TestSweeps:
    def test_known_sweeps_enumerate(self):
        for name in SWEEPS:
            assert enumerate_units(describe_sweep(name))

    def test_full_sweep_covers_registry(self):
        idents = {u.ident for u in enumerate_units(describe_sweep("full"))}
        assert idents == set(EXPERIMENTS)

    def test_unknown_sweep_raises(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            describe_sweep("gigantic")


class TestOptionsAndManifest:
    def test_machine_string_resolves_to_model(self):
        resolved = _resolve_options({"machine": "t3d", "nsteps": 4})
        assert isinstance(resolved["machine"], MachineModel)
        assert resolved["machine"].name == "t3d"
        assert resolved["nsteps"] == 4

    def test_manifest_entry_round_trips_invalidation(self):
        units = enumerate_units(["table8"])
        manifest = {"units": [unit_manifest_entry(u) for u in units]}
        assert invalidated_units(units, manifest) == []
        stale = enumerate_units(["table8"], "other-version")
        assert invalidated_units(stale, manifest) == stale

    def test_units_are_frozen(self):
        (unit,) = enumerate_units(["blockarray"])
        assert isinstance(unit, CampaignUnit)
        with pytest.raises(AttributeError):
            unit.ident = "other"
